// Package wal is the write-ahead delta log that makes live datasets
// durable: a base snapshot (internal/snapshot's `.snap` file) plus a
// sibling `.wal` file of CRC-checked append/delete records. The snap
// format is deliberately untouched — its decoder rejects trailing
// bytes, so deltas layer beside it, never inside it.
//
// Binding and layout. A log's header names the exact base it extends:
// BaseCRC is the CRC-32 (IEEE) of the entire base snapshot file. A
// compaction that folds the deltas into a fresh snapshot changes those
// bytes, so any stale log left behind by a crash mid-compaction fails
// the binding check and is ignored — the data it carried is already in
// the new base. The header also carries the dataset's row-identity
// state (the stable row IDs of the base rows and the next ID to
// assign), so delete-by-ID ranges stay meaningful across restarts and
// compactions.
//
// Integrity. Every record carries its payload length and CRC; the
// header carries its own CRC. Replay stops at the first record that
// fails to frame or checksum — a torn tail from a crash mid-write
// loses at most the final record, and Open truncates the file back to
// the last valid record before appending further. The decoder never
// panics on arbitrary bytes (FuzzWALReplay enforces this) and bounds
// every allocation by the remaining input.
//
// Durability ordering contract. Creating or rotating a log (and the
// base snapshot it binds to) follows write(tmp) → fsync(tmp) →
// rename(tmp, final) → fsync(directory). The final fsync is load-
// bearing: rename alone orders the data blocks, but the *name* lives
// in the directory inode, and on power loss an unsynced directory can
// forget the rename entirely — leaving a stale (or absent) file whose
// BaseCRC no longer matches. Create fsyncs the parent directory after
// its rename; the snapshot writer does the same for `.snap` files.
//
// Sync policy. When each appended record reaches stable storage is a
// SyncPolicy decision: SyncAlways fsyncs per record, SyncBatch defers
// to the caller's per-group-commit Commit(), SyncInterval coalesces
// fsyncs in time (acknowledged mutations inside the window can be
// lost on power failure — the documented trade). A whole drained
// mutation batch is journaled as one RecordBatch frame (one CRC, one
// fsync), which is what makes group commit cheaper than N single-row
// records.
//
// All integers are little-endian, matching the snapshot codec.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Magic opens every WAL file.
const Magic = "HOSWAL01"

// Version is the current format version. RecordBatch (type 3) is an
// additive record type: version stays 1 because old records still
// decode identically, and an old reader treats an unknown type as a
// torn tail rather than misreading it.
const Version = 1

// Typed errors, wrapped so callers can errors.Is.
var (
	// ErrWAL is the root of every error this package returns.
	ErrWAL = errors.New("wal: invalid log")
	// ErrBadMagic: the file does not start with Magic.
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrWAL)
	// ErrVersion: a future (or garbage) format version.
	ErrVersion = fmt.Errorf("%w: unsupported version", ErrWAL)
	// ErrHeader: the header failed to frame or checksum.
	ErrHeader = fmt.Errorf("%w: corrupt header", ErrWAL)
	// ErrBaseMismatch is for callers to report (via errors.Is) when a
	// log's BaseCRC does not match the snapshot it sits beside — a
	// stale log from before a compaction.
	ErrBaseMismatch = fmt.Errorf("%w: base snapshot mismatch", ErrWAL)
)

// RecordType discriminates delta records.
type RecordType uint8

const (
	// RecordAppend adds rows to the end of the dataset.
	RecordAppend RecordType = 1
	// RecordDelete removes the rows whose stable IDs fall in
	// [FromID, ToID).
	RecordDelete RecordType = 2
	// RecordBatch is a group commit: one framed record carrying an
	// ingest stamp plus any number of append/delete sub-records, all
	// covered by a single CRC and (typically) a single fsync. Replay
	// flattens it — Replayed.Records never contains a RecordBatch.
	RecordBatch RecordType = 3
)

// Header binds a log to its base snapshot and carries row identity.
type Header struct {
	// Dim is the dataset dimensionality (validates append records).
	Dim int
	// BaseCRC is the CRC-32 (IEEE) of the base snapshot file bytes.
	BaseCRC uint32
	// NextID is the next stable row ID to assign.
	NextID int64
	// BaseIDs are the stable IDs of the base snapshot's rows, in row
	// order. Contiguous 0..N-1 right after a dataset first goes live;
	// an arbitrary ascending subset after deletions and compactions.
	BaseIDs []int64
}

// Record is one replayed delta. Exactly the fields of its Type are
// meaningful.
type Record struct {
	Type RecordType
	// Append: the rows added, and the stable ID assigned to the first
	// one (the rest follow contiguously).
	Rows    [][]float64
	FirstID int64
	// Delete: stable IDs in [FromID, ToID) were removed.
	FromID int64
	ToID   int64
	// Stamp is the ingest time (Unix nanoseconds) carried by the batch
	// frame this record arrived in; zero for legacy single records.
	// Retention treats zero as "stamp at replay time" — conservative,
	// never expiring a row early.
	Stamp int64
}

// SyncMode selects when appended records are fsync'd.
type SyncMode uint8

const (
	// SyncBatch (the default, zero value) defers durability to the
	// caller's Commit() — one fsync per drained mutation batch.
	SyncBatch SyncMode = iota
	// SyncAlways fsyncs after every appended record frame.
	SyncAlways
	// SyncInterval fsyncs at most once per Interval: Commit() only
	// touches the disk when the window has elapsed. Acknowledged
	// mutations inside the window can be lost on power failure.
	SyncInterval
)

// SyncPolicy is when appended records reach stable storage. The zero
// value is SyncBatch.
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration // only meaningful for SyncInterval
}

// ParseSyncPolicy parses the -wal-sync flag grammar:
// "always" | "batch" | "interval=<duration>". The legacy boolean
// spellings "true"/"false" map to always/batch. Empty means batch.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "batch", "false":
		return SyncPolicy{Mode: SyncBatch}, nil
	case "always", "true":
		return SyncPolicy{Mode: SyncAlways}, nil
	}
	if rest, ok := strings.CutPrefix(s, "interval="); ok {
		d, err := time.ParseDuration(rest)
		if err != nil {
			return SyncPolicy{}, fmt.Errorf("wal: sync policy %q: %v", s, err)
		}
		if d <= 0 {
			return SyncPolicy{}, fmt.Errorf("wal: sync policy %q: interval must be positive", s)
		}
		return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
	}
	return SyncPolicy{}, fmt.Errorf("wal: sync policy %q: want always, batch or interval=<duration>", s)
}

// String renders the policy in the flag grammar.
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval=" + p.Interval.String()
	default:
		return "batch"
	}
}

// Fixed header prefix: magic + version(4) + dim(4) + baseCRC(4) +
// nextID(8) + idCount(4). The ID array and the header CRC(4) follow.
const headerFixed = len(Magic) + 4 + 4 + 4 + 8 + 4

// Per-record frame: type(1) + payloadLen(4) + payloadCRC(4).
const recordFrame = 1 + 4 + 4

// Per-sub-record frame inside a batch payload: type(1) + len(4). No
// per-sub CRC — the batch frame's single CRC covers everything.
const subFrame = 1 + 4

// maxRecordPayload caps a single record's payload; a frame declaring
// more is treated as corruption (torn tail), not an allocation order.
const maxRecordPayload = 1 << 30

// encodeHeader renders the header block, CRC included.
func encodeHeader(h Header) []byte {
	buf := make([]byte, 0, headerFixed+len(h.BaseIDs)*8+4)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Dim))
	buf = binary.LittleEndian.AppendUint32(buf, h.BaseCRC)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.NextID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.BaseIDs)))
	for _, id := range h.BaseIDs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	crc := crc32.ChecksumIEEE(buf[len(Magic):])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// decodeHeader parses and verifies the header block, returning the
// header and the number of bytes it occupied.
func decodeHeader(data []byte) (Header, int, error) {
	var h Header
	if len(data) < headerFixed {
		return h, 0, fmt.Errorf("%w: %d bytes, need %d", ErrHeader, len(data), headerFixed)
	}
	if string(data[:len(Magic)]) != Magic {
		return h, 0, ErrBadMagic
	}
	off := len(Magic)
	ver := binary.LittleEndian.Uint32(data[off:])
	if ver != Version {
		return h, 0, fmt.Errorf("%w: %d (have %d)", ErrVersion, ver, Version)
	}
	dim := binary.LittleEndian.Uint32(data[off+4:])
	h.BaseCRC = binary.LittleEndian.Uint32(data[off+8:])
	h.NextID = int64(binary.LittleEndian.Uint64(data[off+12:]))
	count := binary.LittleEndian.Uint32(data[off+20:])
	if dim == 0 || dim > 1<<20 {
		return h, 0, fmt.Errorf("%w: dimensionality %d", ErrHeader, dim)
	}
	h.Dim = int(dim)
	end := headerFixed + int(count)*8 + 4
	if count > uint32(len(data)/8) || len(data) < end {
		return h, 0, fmt.Errorf("%w: truncated ID table", ErrHeader)
	}
	want := binary.LittleEndian.Uint32(data[end-4:])
	if crc32.ChecksumIEEE(data[len(Magic):end-4]) != want {
		return h, 0, fmt.Errorf("%w: checksum mismatch", ErrHeader)
	}
	h.BaseIDs = make([]int64, count)
	for i := range h.BaseIDs {
		h.BaseIDs[i] = int64(binary.LittleEndian.Uint64(data[headerFixed+i*8:]))
	}
	if h.NextID < 0 {
		return h, 0, fmt.Errorf("%w: negative next ID", ErrHeader)
	}
	prev := int64(-1)
	for _, id := range h.BaseIDs {
		if id <= prev || id >= h.NextID {
			return h, 0, fmt.Errorf("%w: ID table not ascending below next ID", ErrHeader)
		}
		prev = id
	}
	return h, end, nil
}

// encodeRecord renders one framed record.
func encodeRecord(typ RecordType, payload []byte) []byte {
	buf := make([]byte, 0, recordFrame+len(payload))
	buf = append(buf, byte(typ))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// encodeAppendPayload renders the append payload shared by single and
// batched records: count(4) + firstID(8) + rows. Rows must already be
// validated (width and finiteness).
func encodeAppendPayload(firstID int64, rows [][]float64, dim int) []byte {
	payload := make([]byte, 0, 12+len(rows)*dim*8)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rows)))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(firstID))
	for _, row := range rows {
		for _, v := range row {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
		}
	}
	return payload
}

// encodeDeletePayload renders the delete payload: fromID(8) + toID(8).
func encodeDeletePayload(fromID, toID int64) []byte {
	payload := make([]byte, 0, 16)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(fromID))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(toID))
	return payload
}

// validateAppend is the writer-side twin of decodeAppendPayload.
func validateAppend(firstID int64, rows [][]float64, dim int) error {
	if len(rows) == 0 {
		return fmt.Errorf("wal: append: no rows")
	}
	if firstID < 0 {
		return fmt.Errorf("wal: append: negative first ID")
	}
	for i, row := range rows {
		if len(row) != dim {
			return fmt.Errorf("wal: append: row %d has %d values, want %d", i, len(row), dim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("wal: append: row %d column %d is not finite", i, j)
			}
		}
	}
	return nil
}

// decodeAppendPayload parses an append payload. ok=false on any
// framing, identity or finiteness violation.
func decodeAppendPayload(payload []byte, dim int) (rows [][]float64, firstID int64, ok bool) {
	if len(payload) < 12 {
		return nil, 0, false
	}
	count := binary.LittleEndian.Uint32(payload)
	firstID = int64(binary.LittleEndian.Uint64(payload[4:]))
	if count == 0 || firstID < 0 {
		return nil, 0, false
	}
	if uint64(len(payload)-12) != uint64(count)*uint64(dim)*8 {
		return nil, 0, false
	}
	rows = make([][]float64, count)
	p := 12
	for i := range rows {
		row := make([]float64, dim)
		for j := range row {
			v := math.Float64frombits(binary.LittleEndian.Uint64(payload[p:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, 0, false
			}
			row[j] = v
			p += 8
		}
		rows[i] = row
	}
	return rows, firstID, true
}

// decodeDeletePayload parses a delete payload.
func decodeDeletePayload(payload []byte) (fromID, toID int64, ok bool) {
	if len(payload) != 16 {
		return 0, 0, false
	}
	fromID = int64(binary.LittleEndian.Uint64(payload))
	toID = int64(binary.LittleEndian.Uint64(payload[8:]))
	if fromID < 0 || toID < fromID {
		return 0, 0, false
	}
	return fromID, toID, true
}

// decodeBatchPayload parses a batch payload — stamp(8) + subCount(4) +
// per sub type(1)+len(4)+payload — into flattened records, each
// stamped with the frame's ingest time.
func decodeBatchPayload(payload []byte, dim int) ([]Record, bool) {
	if len(payload) < 12 {
		return nil, false
	}
	stamp := int64(binary.LittleEndian.Uint64(payload))
	count := binary.LittleEndian.Uint32(payload[8:])
	// Each sub-record needs at least its frame; a count beyond that is
	// garbage, and rejecting it here bounds the slice allocation below.
	if stamp < 0 || count == 0 || count > uint32((len(payload)-12)/subFrame) {
		return nil, false
	}
	recs := make([]Record, 0, count)
	off := 12
	for i := uint32(0); i < count; i++ {
		if len(payload)-off < subFrame {
			return nil, false
		}
		typ := RecordType(payload[off])
		slen := binary.LittleEndian.Uint32(payload[off+1:])
		off += subFrame
		if slen > maxRecordPayload || len(payload)-off < int(slen) {
			return nil, false
		}
		sub := payload[off : off+int(slen)]
		off += int(slen)
		switch typ {
		case RecordAppend:
			rows, firstID, ok := decodeAppendPayload(sub, dim)
			if !ok {
				return nil, false
			}
			recs = append(recs, Record{Type: RecordAppend, Rows: rows, FirstID: firstID, Stamp: stamp})
		case RecordDelete:
			from, to, ok := decodeDeletePayload(sub)
			if !ok {
				return nil, false
			}
			recs = append(recs, Record{Type: RecordDelete, FromID: from, ToID: to, Stamp: stamp})
		default:
			// Batches never nest, and unknown sub-types poison the
			// whole frame (its CRC passed, so this is a writer bug or
			// a future format — either way, stop trusting it).
			return nil, false
		}
	}
	if off != len(payload) {
		return nil, false
	}
	return recs, true
}

// decodeRecord parses one record at data[off:], appending the decoded
// (and, for batches, flattened) records to out. ok=false means the
// bytes from off on do not form a complete valid record — the torn
// tail (or trailing garbage, indistinguishable by design).
func decodeRecord(data []byte, off, dim int, out []Record) ([]Record, int, bool) {
	if len(data)-off < recordFrame {
		return out, 0, false
	}
	typ := RecordType(data[off])
	plen := binary.LittleEndian.Uint32(data[off+1:])
	pcrc := binary.LittleEndian.Uint32(data[off+5:])
	if plen > maxRecordPayload || len(data)-off-recordFrame < int(plen) {
		return out, 0, false
	}
	payload := data[off+recordFrame : off+recordFrame+int(plen)]
	if crc32.ChecksumIEEE(payload) != pcrc {
		return out, 0, false
	}
	switch typ {
	case RecordAppend:
		rows, firstID, ok := decodeAppendPayload(payload, dim)
		if !ok {
			return out, 0, false
		}
		out = append(out, Record{Type: RecordAppend, Rows: rows, FirstID: firstID})
	case RecordDelete:
		from, to, ok := decodeDeletePayload(payload)
		if !ok {
			return out, 0, false
		}
		out = append(out, Record{Type: RecordDelete, FromID: from, ToID: to})
	case RecordBatch:
		recs, ok := decodeBatchPayload(payload, dim)
		if !ok {
			return out, 0, false
		}
		out = append(out, recs...)
	default:
		return out, 0, false
	}
	return out, recordFrame + int(plen), true
}

// Replayed is the result of decoding a log image.
type Replayed struct {
	Header Header
	// Records are the flattened deltas in journal order: batch frames
	// are expanded into their stamped sub-records.
	Records []Record
	// Frames is how many on-disk record frames the valid prefix holds
	// (a batch frame counts once however many sub-records it carries).
	Frames int64
	// ValidLen is the byte length of the valid prefix (header plus
	// every intact record); Torn reports whether bytes beyond it were
	// discarded (a truncated or corrupt trailing record).
	ValidLen int64
	Torn     bool
}

// Replay decodes a complete WAL image. Header-level corruption is an
// error (nothing can be trusted); record-level corruption is not —
// decoding stops at the last valid record and Torn is set, which is
// the crash-mid-append recovery story. Replay never panics on
// arbitrary input.
func Replay(data []byte) (*Replayed, error) {
	h, off, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	out := &Replayed{Header: h, ValidLen: int64(off)}
	for off < len(data) {
		recs, n, ok := decodeRecord(data, off, h.Dim, out.Records)
		if !ok {
			out.Torn = true
			return out, nil
		}
		out.Records = recs
		out.Frames++
		off += n
		out.ValidLen = int64(off)
	}
	return out, nil
}

// ReplayFile reads and decodes path.
func ReplayFile(path string) (*Replayed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Replay(data)
}

// Log is an open WAL accepting appends. Not safe for concurrent use;
// the serving layer serializes dataset mutations anyway.
type Log struct {
	f        *os.File
	path     string
	dim      int
	size     int64
	records  int64
	policy   SyncPolicy
	syncs    int64
	dirty    bool
	lastSync time.Time
}

// syncDir fsyncs the directory holding path, making a just-completed
// rename durable (see the package-level ordering contract). Some
// filesystems refuse fsync on a directory handle; that is reported,
// not ignored, because silently skipping it would reintroduce the
// lost-rename window this exists to close.
func syncDir(path string) error {
	dir := filepath.Dir(path)
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Create atomically writes a fresh log containing only the header and
// opens it for appending. The write follows the full ordering
// contract — temp file, fsync, rename, directory fsync — so a crash
// at any point leaves either no log or a complete, durably named one.
func Create(path string, h Header, policy SyncPolicy) (*Log, error) {
	if h.Dim < 1 {
		return nil, fmt.Errorf("wal: create: dimensionality %d", h.Dim)
	}
	buf := encodeHeader(h)
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return nil, err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return nil, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return nil, err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return nil, err
	}
	if err := syncDir(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, path: path, dim: h.Dim, size: int64(len(buf)), policy: policy, lastSync: time.Now()}, nil
}

// Open validates an existing log, replays it, truncates any torn tail
// (so the next append starts on a clean boundary) and returns the log
// positioned for appending plus everything replayed.
func Open(path string, policy SyncPolicy) (*Log, *Replayed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	rep, err := Replay(data)
	if err != nil {
		return nil, nil, err
	}
	if rep.Torn {
		if err := os.Truncate(path, rep.ValidLen); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Log{
		f:        f,
		path:     path,
		dim:      rep.Header.Dim,
		size:     rep.ValidLen,
		records:  rep.Frames,
		policy:   policy,
		lastSync: time.Now(),
	}, rep, nil
}

// Path returns the file path of the log.
func (l *Log) Path() string { return l.path }

// Size returns the current byte length of the valid log.
func (l *Log) Size() int64 { return l.size }

// Records returns how many record frames the log holds (replayed +
// appended); a batch frame counts once.
func (l *Log) Records() int64 { return l.records }

// Syncs returns how many fsyncs this log has issued since it was
// opened — the numerator of the bench lane's fsyncs-per-row metric.
func (l *Log) Syncs() int64 { return l.syncs }

// syncNow flushes to stable storage and advances the sync clock.
func (l *Log) syncNow() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncs++
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// append frames, writes and (under SyncAlways) syncs one record.
func (l *Log) append(typ RecordType, payload []byte) error {
	buf := encodeRecord(typ, payload)
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.size += int64(len(buf))
	l.records++
	l.dirty = true
	if l.policy.Mode == SyncAlways {
		return l.syncNow()
	}
	return nil
}

// Commit is the group-commit durability point, called once per
// drained mutation batch after its records are written. SyncAlways
// already synced per record (no-op); SyncBatch fsyncs now; under
// SyncInterval the fsync happens only when the window has elapsed.
func (l *Log) Commit() error {
	switch l.policy.Mode {
	case SyncAlways:
		return nil
	case SyncInterval:
		if !l.dirty || time.Since(l.lastSync) < l.policy.Interval {
			return nil
		}
	}
	if !l.dirty {
		return nil
	}
	return l.syncNow()
}

// AppendRows journals an append of rows, the first of which received
// stable ID firstID. Rows must match the log's dimensionality and be
// finite — the same validation replay applies.
func (l *Log) AppendRows(firstID int64, rows [][]float64) error {
	if err := validateAppend(firstID, rows, l.dim); err != nil {
		return err
	}
	return l.append(RecordAppend, encodeAppendPayload(firstID, rows, l.dim))
}

// AppendDelete journals a deletion of stable IDs in [fromID, toID).
func (l *Log) AppendDelete(fromID, toID int64) error {
	if fromID < 0 || toID < fromID {
		return fmt.Errorf("wal: delete: invalid ID range [%d,%d)", fromID, toID)
	}
	return l.append(RecordDelete, encodeDeletePayload(fromID, toID))
}

// AppendBatch journals a drained mutation batch as one RecordBatch
// frame: the ingest stamp (Unix nanoseconds, must be non-negative)
// plus each record's payload, under a single CRC. Only RecordAppend
// and RecordDelete records are accepted; every one is validated with
// the same rules as its single-record form before any bytes are
// written, so a bad entry poisons nothing.
func (l *Log) AppendBatch(stamp int64, recs []Record) error {
	if stamp < 0 {
		return fmt.Errorf("wal: batch: negative stamp")
	}
	if len(recs) == 0 {
		return fmt.Errorf("wal: batch: no records")
	}
	for i, rec := range recs {
		switch rec.Type {
		case RecordAppend:
			if err := validateAppend(rec.FirstID, rec.Rows, l.dim); err != nil {
				return fmt.Errorf("wal: batch record %d: %w", i, err)
			}
		case RecordDelete:
			if rec.FromID < 0 || rec.ToID < rec.FromID {
				return fmt.Errorf("wal: batch record %d: invalid ID range [%d,%d)", i, rec.FromID, rec.ToID)
			}
		default:
			return fmt.Errorf("wal: batch record %d: type %d not batchable", i, rec.Type)
		}
	}
	payload := make([]byte, 0, 12+len(recs)*subFrame)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(stamp))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(recs)))
	for _, rec := range recs {
		var sub []byte
		if rec.Type == RecordAppend {
			sub = encodeAppendPayload(rec.FirstID, rec.Rows, l.dim)
		} else {
			sub = encodeDeletePayload(rec.FromID, rec.ToID)
		}
		payload = append(payload, byte(rec.Type))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(sub)))
		payload = append(payload, sub...)
	}
	return l.append(RecordBatch, payload)
}

// Sync flushes the log to stable storage unconditionally.
func (l *Log) Sync() error { return l.syncNow() }

// Close flushes any deferred writes and closes the underlying file.
// The log is unusable afterwards.
func (l *Log) Close() error {
	if l.dirty {
		if err := l.syncNow(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}
