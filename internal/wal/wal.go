// Package wal is the write-ahead delta log that makes live datasets
// durable: a base snapshot (internal/snapshot's `.snap` file) plus a
// sibling `.wal` file of CRC-checked append/delete records. The snap
// format is deliberately untouched — its decoder rejects trailing
// bytes, so deltas layer beside it, never inside it.
//
// Binding and layout. A log's header names the exact base it extends:
// BaseCRC is the CRC-32 (IEEE) of the entire base snapshot file. A
// compaction that folds the deltas into a fresh snapshot changes those
// bytes, so any stale log left behind by a crash mid-compaction fails
// the binding check and is ignored — the data it carried is already in
// the new base. The header also carries the dataset's row-identity
// state (the stable row IDs of the base rows and the next ID to
// assign), so delete-by-ID ranges stay meaningful across restarts and
// compactions.
//
// Integrity. Every record carries its payload length and CRC; the
// header carries its own CRC. Replay stops at the first record that
// fails to frame or checksum — a torn tail from a crash mid-write
// loses at most the final record, and Open truncates the file back to
// the last valid record before appending further. The decoder never
// panics on arbitrary bytes (FuzzWALReplay enforces this) and bounds
// every allocation by the remaining input.
//
// All integers are little-endian, matching the snapshot codec.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Magic opens every WAL file.
const Magic = "HOSWAL01"

// Version is the current format version.
const Version = 1

// Typed errors, wrapped so callers can errors.Is.
var (
	// ErrWAL is the root of every error this package returns.
	ErrWAL = errors.New("wal: invalid log")
	// ErrBadMagic: the file does not start with Magic.
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrWAL)
	// ErrVersion: a future (or garbage) format version.
	ErrVersion = fmt.Errorf("%w: unsupported version", ErrWAL)
	// ErrHeader: the header failed to frame or checksum.
	ErrHeader = fmt.Errorf("%w: corrupt header", ErrWAL)
	// ErrBaseMismatch is for callers to report (via errors.Is) when a
	// log's BaseCRC does not match the snapshot it sits beside — a
	// stale log from before a compaction.
	ErrBaseMismatch = fmt.Errorf("%w: base snapshot mismatch", ErrWAL)
)

// RecordType discriminates delta records.
type RecordType uint8

const (
	// RecordAppend adds rows to the end of the dataset.
	RecordAppend RecordType = 1
	// RecordDelete removes the rows whose stable IDs fall in
	// [FromID, ToID).
	RecordDelete RecordType = 2
)

// Header binds a log to its base snapshot and carries row identity.
type Header struct {
	// Dim is the dataset dimensionality (validates append records).
	Dim int
	// BaseCRC is the CRC-32 (IEEE) of the base snapshot file bytes.
	BaseCRC uint32
	// NextID is the next stable row ID to assign.
	NextID int64
	// BaseIDs are the stable IDs of the base snapshot's rows, in row
	// order. Contiguous 0..N-1 right after a dataset first goes live;
	// an arbitrary ascending subset after deletions and compactions.
	BaseIDs []int64
}

// Record is one replayed delta. Exactly the fields of its Type are
// meaningful.
type Record struct {
	Type RecordType
	// Append: the rows added, and the stable ID assigned to the first
	// one (the rest follow contiguously).
	Rows    [][]float64
	FirstID int64
	// Delete: stable IDs in [FromID, ToID) were removed.
	FromID int64
	ToID   int64
}

// Fixed header prefix: magic + version(4) + dim(4) + baseCRC(4) +
// nextID(8) + idCount(4). The ID array and the header CRC(4) follow.
const headerFixed = len(Magic) + 4 + 4 + 4 + 8 + 4

// Per-record frame: type(1) + payloadLen(4) + payloadCRC(4).
const recordFrame = 1 + 4 + 4

// maxRecordPayload caps a single record's payload; a frame declaring
// more is treated as corruption (torn tail), not an allocation order.
const maxRecordPayload = 1 << 30

// encodeHeader renders the header block, CRC included.
func encodeHeader(h Header) []byte {
	buf := make([]byte, 0, headerFixed+len(h.BaseIDs)*8+4)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Dim))
	buf = binary.LittleEndian.AppendUint32(buf, h.BaseCRC)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.NextID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.BaseIDs)))
	for _, id := range h.BaseIDs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	crc := crc32.ChecksumIEEE(buf[len(Magic):])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// decodeHeader parses and verifies the header block, returning the
// header and the number of bytes it occupied.
func decodeHeader(data []byte) (Header, int, error) {
	var h Header
	if len(data) < headerFixed {
		return h, 0, fmt.Errorf("%w: %d bytes, need %d", ErrHeader, len(data), headerFixed)
	}
	if string(data[:len(Magic)]) != Magic {
		return h, 0, ErrBadMagic
	}
	off := len(Magic)
	ver := binary.LittleEndian.Uint32(data[off:])
	if ver != Version {
		return h, 0, fmt.Errorf("%w: %d (have %d)", ErrVersion, ver, Version)
	}
	dim := binary.LittleEndian.Uint32(data[off+4:])
	h.BaseCRC = binary.LittleEndian.Uint32(data[off+8:])
	h.NextID = int64(binary.LittleEndian.Uint64(data[off+12:]))
	count := binary.LittleEndian.Uint32(data[off+20:])
	if dim == 0 || dim > 1<<20 {
		return h, 0, fmt.Errorf("%w: dimensionality %d", ErrHeader, dim)
	}
	h.Dim = int(dim)
	end := headerFixed + int(count)*8 + 4
	if count > uint32(len(data)/8) || len(data) < end {
		return h, 0, fmt.Errorf("%w: truncated ID table", ErrHeader)
	}
	want := binary.LittleEndian.Uint32(data[end-4:])
	if crc32.ChecksumIEEE(data[len(Magic):end-4]) != want {
		return h, 0, fmt.Errorf("%w: checksum mismatch", ErrHeader)
	}
	h.BaseIDs = make([]int64, count)
	for i := range h.BaseIDs {
		h.BaseIDs[i] = int64(binary.LittleEndian.Uint64(data[headerFixed+i*8:]))
	}
	if h.NextID < 0 {
		return h, 0, fmt.Errorf("%w: negative next ID", ErrHeader)
	}
	prev := int64(-1)
	for _, id := range h.BaseIDs {
		if id <= prev || id >= h.NextID {
			return h, 0, fmt.Errorf("%w: ID table not ascending below next ID", ErrHeader)
		}
		prev = id
	}
	return h, end, nil
}

// encodeRecord renders one framed record.
func encodeRecord(typ RecordType, payload []byte) []byte {
	buf := make([]byte, 0, recordFrame+len(payload))
	buf = append(buf, byte(typ))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// decodeRecord parses one record at data[off:]. ok=false means the
// bytes from off on do not form a complete valid record — the torn
// tail (or trailing garbage, indistinguishable by design).
func decodeRecord(data []byte, off, dim int) (Record, int, bool) {
	var rec Record
	if len(data)-off < recordFrame {
		return rec, 0, false
	}
	typ := RecordType(data[off])
	plen := binary.LittleEndian.Uint32(data[off+1:])
	pcrc := binary.LittleEndian.Uint32(data[off+5:])
	if plen > maxRecordPayload || len(data)-off-recordFrame < int(plen) {
		return rec, 0, false
	}
	payload := data[off+recordFrame : off+recordFrame+int(plen)]
	if crc32.ChecksumIEEE(payload) != pcrc {
		return rec, 0, false
	}
	rec.Type = typ
	switch typ {
	case RecordAppend:
		if len(payload) < 12 {
			return rec, 0, false
		}
		count := binary.LittleEndian.Uint32(payload)
		rec.FirstID = int64(binary.LittleEndian.Uint64(payload[4:]))
		if count == 0 || rec.FirstID < 0 {
			return rec, 0, false
		}
		if uint64(len(payload)-12) != uint64(count)*uint64(dim)*8 {
			return rec, 0, false
		}
		rec.Rows = make([][]float64, count)
		p := 12
		for i := range rec.Rows {
			row := make([]float64, dim)
			for j := range row {
				v := math.Float64frombits(binary.LittleEndian.Uint64(payload[p:]))
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return rec, 0, false
				}
				row[j] = v
				p += 8
			}
			rec.Rows[i] = row
		}
	case RecordDelete:
		if len(payload) != 16 {
			return rec, 0, false
		}
		rec.FromID = int64(binary.LittleEndian.Uint64(payload))
		rec.ToID = int64(binary.LittleEndian.Uint64(payload[8:]))
		if rec.FromID < 0 || rec.ToID < rec.FromID {
			return rec, 0, false
		}
	default:
		return rec, 0, false
	}
	return rec, recordFrame + int(plen), true
}

// Replayed is the result of decoding a log image.
type Replayed struct {
	Header  Header
	Records []Record
	// ValidLen is the byte length of the valid prefix (header plus
	// every intact record); Torn reports whether bytes beyond it were
	// discarded (a truncated or corrupt trailing record).
	ValidLen int64
	Torn     bool
}

// Replay decodes a complete WAL image. Header-level corruption is an
// error (nothing can be trusted); record-level corruption is not —
// decoding stops at the last valid record and Torn is set, which is
// the crash-mid-append recovery story. Replay never panics on
// arbitrary input.
func Replay(data []byte) (*Replayed, error) {
	h, off, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	out := &Replayed{Header: h, ValidLen: int64(off)}
	for off < len(data) {
		rec, n, ok := decodeRecord(data, off, h.Dim)
		if !ok {
			out.Torn = true
			return out, nil
		}
		out.Records = append(out.Records, rec)
		off += n
		out.ValidLen = int64(off)
	}
	return out, nil
}

// ReplayFile reads and decodes path.
func ReplayFile(path string) (*Replayed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Replay(data)
}

// Log is an open WAL accepting appends. Not safe for concurrent use;
// the serving layer serializes dataset mutations anyway.
type Log struct {
	f       *os.File
	path    string
	dim     int
	size    int64
	records int64
	sync    bool
}

// Create atomically writes a fresh log containing only the header
// (temp file + rename, so a crash never leaves a half-written header)
// and opens it for appending. sync makes every subsequent append an
// fsync'd durability point.
func Create(path string, h Header, sync bool) (*Log, error) {
	if h.Dim < 1 {
		return nil, fmt.Errorf("wal: create: dimensionality %d", h.Dim)
	}
	buf := encodeHeader(h)
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return nil, err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return nil, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return nil, err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, path: path, dim: h.Dim, size: int64(len(buf)), sync: sync}, nil
}

// Open validates an existing log, replays it, truncates any torn tail
// (so the next append starts on a clean boundary) and returns the log
// positioned for appending plus everything replayed.
func Open(path string, sync bool) (*Log, *Replayed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	rep, err := Replay(data)
	if err != nil {
		return nil, nil, err
	}
	if rep.Torn {
		if err := os.Truncate(path, rep.ValidLen); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Log{
		f:       f,
		path:    path,
		dim:     rep.Header.Dim,
		size:    rep.ValidLen,
		records: int64(len(rep.Records)),
		sync:    sync,
	}, rep, nil
}

// Path returns the file path of the log.
func (l *Log) Path() string { return l.path }

// Size returns the current byte length of the valid log.
func (l *Log) Size() int64 { return l.size }

// Records returns how many records the log holds (replayed + appended).
func (l *Log) Records() int64 { return l.records }

// append frames, writes and (optionally) syncs one record.
func (l *Log) append(typ RecordType, payload []byte) error {
	buf := encodeRecord(typ, payload)
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.size += int64(len(buf))
	l.records++
	return nil
}

// AppendRows journals an append of rows, the first of which received
// stable ID firstID. Rows must match the log's dimensionality and be
// finite — the same validation replay applies.
func (l *Log) AppendRows(firstID int64, rows [][]float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("wal: append: no rows")
	}
	if firstID < 0 {
		return fmt.Errorf("wal: append: negative first ID")
	}
	payload := make([]byte, 0, 12+len(rows)*l.dim*8)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rows)))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(firstID))
	for i, row := range rows {
		if len(row) != l.dim {
			return fmt.Errorf("wal: append: row %d has %d values, want %d", i, len(row), l.dim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("wal: append: row %d column %d is not finite", i, j)
			}
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
		}
	}
	return l.append(RecordAppend, payload)
}

// AppendDelete journals a deletion of stable IDs in [fromID, toID).
func (l *Log) AppendDelete(fromID, toID int64) error {
	if fromID < 0 || toID < fromID {
		return fmt.Errorf("wal: delete: invalid ID range [%d,%d)", fromID, toID)
	}
	payload := make([]byte, 0, 16)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(fromID))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(toID))
	return l.append(RecordDelete, payload)
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Close closes the underlying file. The log is unusable afterwards.
func (l *Log) Close() error { return l.f.Close() }
