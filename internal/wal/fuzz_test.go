package wal

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWALReplay: Replay must never panic and never over-allocate on
// arbitrary bytes — every length field is bounded by the remaining
// input before allocation. Whatever does decode must re-encode into a
// log the decoder accepts unchanged (round-trip closure), and a valid
// prefix must replay identically after arbitrary bytes are appended
// (torn-tail closure).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	h := Header{Dim: 2, BaseCRC: 7, NextID: 3, BaseIDs: []int64{0, 1, 2}}
	clean := encodeHeader(h)
	f.Add(append([]byte(nil), clean...))
	withRecs := append([]byte(nil), clean...)
	p := make([]byte, 0, 12+2*8)
	p = binary.LittleEndian.AppendUint32(p, 1)
	p = binary.LittleEndian.AppendUint64(p, 3)
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(1.5))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(-2.5))
	withRecs = append(withRecs, encodeRecord(RecordAppend, p)...)
	d := make([]byte, 0, 16)
	d = binary.LittleEndian.AppendUint64(d, 0)
	d = binary.LittleEndian.AppendUint64(d, 2)
	withRecs = append(withRecs, encodeRecord(RecordDelete, d)...)
	f.Add(append([]byte(nil), withRecs...))
	// A group-commit batch frame: stamp + two sub-records under one CRC.
	batch := make([]byte, 0, 64)
	batch = binary.LittleEndian.AppendUint64(batch, 42) // stamp
	batch = binary.LittleEndian.AppendUint32(batch, 2)  // sub count
	batch = append(batch, byte(RecordAppend))
	batch = binary.LittleEndian.AppendUint32(batch, uint32(len(p)))
	batch = append(batch, p...)
	batch = append(batch, byte(RecordDelete))
	batch = binary.LittleEndian.AppendUint32(batch, uint32(len(d)))
	batch = append(batch, d...)
	f.Add(append(append([]byte(nil), clean...), encodeRecord(RecordBatch, batch)...))
	// Declared-huge lengths that must not allocate.
	huge := append([]byte(nil), clean...)
	huge = append(huge, byte(RecordAppend), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := Replay(data)
		if err != nil {
			return
		}
		if rep.ValidLen > int64(len(data)) {
			t.Fatalf("validLen %d exceeds input %d", rep.ValidLen, len(data))
		}
		if rep.Torn && rep.ValidLen == int64(len(data)) {
			t.Fatal("torn log with no discarded bytes")
		}
		// Round-trip closure: re-encode what replayed; it must decode
		// to the same records with nothing torn. Replay flattens batch
		// frames, so replayed records are only ever append/delete; a
		// stamped record re-encodes as a single-sub batch frame (the
		// stamp has nowhere else to live), an unstamped one as the
		// legacy single record.
		img := encodeHeader(rep.Header)
		for _, rec := range rep.Records {
			var p []byte
			switch rec.Type {
			case RecordAppend:
				p = make([]byte, 0, 12+len(rec.Rows)*rep.Header.Dim*8)
				p = binary.LittleEndian.AppendUint32(p, uint32(len(rec.Rows)))
				p = binary.LittleEndian.AppendUint64(p, uint64(rec.FirstID))
				for _, row := range rec.Rows {
					if len(row) != rep.Header.Dim {
						t.Fatalf("replayed row width %d, header dim %d", len(row), rep.Header.Dim)
					}
					for _, v := range row {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatal("non-finite value survived replay")
						}
						p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
					}
				}
			case RecordDelete:
				p = make([]byte, 0, 16)
				p = binary.LittleEndian.AppendUint64(p, uint64(rec.FromID))
				p = binary.LittleEndian.AppendUint64(p, uint64(rec.ToID))
			default:
				t.Fatalf("replayed unknown record type %d", rec.Type)
			}
			if rec.Stamp < 0 {
				t.Fatalf("negative stamp survived replay: %d", rec.Stamp)
			}
			if rec.Stamp != 0 {
				b := make([]byte, 0, 12+subFrame+len(p))
				b = binary.LittleEndian.AppendUint64(b, uint64(rec.Stamp))
				b = binary.LittleEndian.AppendUint32(b, 1)
				b = append(b, byte(rec.Type))
				b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
				b = append(b, p...)
				img = append(img, encodeRecord(RecordBatch, b)...)
			} else {
				img = append(img, encodeRecord(rec.Type, p)...)
			}
		}
		rep2, err := Replay(img)
		if err != nil {
			t.Fatalf("re-encoded log rejected: %v", err)
		}
		if rep2.Torn {
			t.Fatal("re-encoded log torn")
		}
		if len(rep2.Records) != len(rep.Records) {
			t.Fatalf("round trip lost records: %d vs %d", len(rep2.Records), len(rep.Records))
		}
		// Torn-tail closure: the valid prefix plus garbage replays the
		// same records.
		garbage := append(append([]byte(nil), data[:rep.ValidLen]...), 0xde, 0xad)
		rep3, err := Replay(garbage)
		if err != nil {
			t.Fatalf("valid prefix plus garbage rejected: %v", err)
		}
		if len(rep3.Records) != len(rep.Records) || !rep3.Torn {
			t.Fatalf("torn-tail closure broken: %d records torn=%v", len(rep3.Records), rep3.Torn)
		}
	})
}
