package wal

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWALReplay: Replay must never panic and never over-allocate on
// arbitrary bytes — every length field is bounded by the remaining
// input before allocation. Whatever does decode must re-encode into a
// log the decoder accepts unchanged (round-trip closure), and a valid
// prefix must replay identically after arbitrary bytes are appended
// (torn-tail closure).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	h := Header{Dim: 2, BaseCRC: 7, NextID: 3, BaseIDs: []int64{0, 1, 2}}
	clean := encodeHeader(h)
	f.Add(append([]byte(nil), clean...))
	withRecs := append([]byte(nil), clean...)
	p := make([]byte, 0, 12+2*8)
	p = binary.LittleEndian.AppendUint32(p, 1)
	p = binary.LittleEndian.AppendUint64(p, 3)
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(1.5))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(-2.5))
	withRecs = append(withRecs, encodeRecord(RecordAppend, p)...)
	d := make([]byte, 0, 16)
	d = binary.LittleEndian.AppendUint64(d, 0)
	d = binary.LittleEndian.AppendUint64(d, 2)
	withRecs = append(withRecs, encodeRecord(RecordDelete, d)...)
	f.Add(append([]byte(nil), withRecs...))
	// Declared-huge lengths that must not allocate.
	huge := append([]byte(nil), clean...)
	huge = append(huge, byte(RecordAppend), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := Replay(data)
		if err != nil {
			return
		}
		if rep.ValidLen > int64(len(data)) {
			t.Fatalf("validLen %d exceeds input %d", rep.ValidLen, len(data))
		}
		if rep.Torn && rep.ValidLen == int64(len(data)) {
			t.Fatal("torn log with no discarded bytes")
		}
		// Round-trip closure: re-encode what replayed; it must decode
		// to the same records with nothing torn.
		img := encodeHeader(rep.Header)
		for _, rec := range rep.Records {
			switch rec.Type {
			case RecordAppend:
				p := make([]byte, 0, 12+len(rec.Rows)*rep.Header.Dim*8)
				p = binary.LittleEndian.AppendUint32(p, uint32(len(rec.Rows)))
				p = binary.LittleEndian.AppendUint64(p, uint64(rec.FirstID))
				for _, row := range rec.Rows {
					if len(row) != rep.Header.Dim {
						t.Fatalf("replayed row width %d, header dim %d", len(row), rep.Header.Dim)
					}
					for _, v := range row {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatal("non-finite value survived replay")
						}
						p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
					}
				}
				img = append(img, encodeRecord(RecordAppend, p)...)
			case RecordDelete:
				p := make([]byte, 0, 16)
				p = binary.LittleEndian.AppendUint64(p, uint64(rec.FromID))
				p = binary.LittleEndian.AppendUint64(p, uint64(rec.ToID))
				img = append(img, encodeRecord(RecordDelete, p)...)
			default:
				t.Fatalf("replayed unknown record type %d", rec.Type)
			}
		}
		rep2, err := Replay(img)
		if err != nil {
			t.Fatalf("re-encoded log rejected: %v", err)
		}
		if rep2.Torn {
			t.Fatal("re-encoded log torn")
		}
		if len(rep2.Records) != len(rep.Records) {
			t.Fatalf("round trip lost records: %d vs %d", len(rep2.Records), len(rep.Records))
		}
		// Torn-tail closure: the valid prefix plus garbage replays the
		// same records.
		garbage := append(append([]byte(nil), data[:rep.ValidLen]...), 0xde, 0xad)
		rep3, err := Replay(garbage)
		if err != nil {
			t.Fatalf("valid prefix plus garbage rejected: %v", err)
		}
		if len(rep3.Records) != len(rep.Records) || !rep3.Torn {
			t.Fatalf("torn-tail closure broken: %d records torn=%v", len(rep3.Records), rep3.Torn)
		}
	})
}
