package wal

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testHeader() Header {
	return Header{
		Dim:     3,
		BaseCRC: 0xdeadbeef,
		NextID:  5,
		BaseIDs: []int64{0, 1, 2, 3, 4},
	}
}

func mustCreate(t *testing.T, h Header) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.wal")
	l, err := Create(path, h, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

// TestRoundTrip: create, append a mix of records, reopen, replay —
// everything comes back verbatim and the log stays appendable.
func TestRoundTrip(t *testing.T) {
	h := testHeader()
	l, path := mustCreate(t, h)
	rows1 := [][]float64{{1, 2, 3}, {4, 5, 6}}
	rows2 := [][]float64{{-0.5, math.MaxFloat64, 1e-300}}
	if err := l.AppendRows(5, rows1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRows(7, rows2); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 3 {
		t.Fatalf("records = %d, want 3", l.Records())
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := Open(path, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rep.Torn {
		t.Fatal("clean log reported torn")
	}
	if !reflect.DeepEqual(rep.Header, h) {
		t.Fatalf("header round-trip mismatch:\n%+v\n%+v", rep.Header, h)
	}
	want := []Record{
		{Type: RecordAppend, FirstID: 5, Rows: rows1},
		{Type: RecordDelete, FromID: 1, ToID: 3},
		{Type: RecordAppend, FirstID: 7, Rows: rows2},
	}
	if !reflect.DeepEqual(rep.Records, want) {
		t.Fatalf("records mismatch:\n%+v\n%+v", rep.Records, want)
	}
	if l2.Records() != 3 || l2.Size() != rep.ValidLen {
		t.Fatalf("reopened log state: records=%d size=%d validLen=%d",
			l2.Records(), l2.Size(), rep.ValidLen)
	}
	if l2.Path() != path {
		t.Fatalf("path = %q, want %q", l2.Path(), path)
	}

	// The reopened log accepts further appends that replay too.
	if err := l2.AppendDelete(0, 1); err != nil {
		t.Fatal(err)
	}
	rep2, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Records) != 4 || rep2.Records[3].Type != RecordDelete {
		t.Fatalf("append after reopen not replayed: %+v", rep2.Records)
	}
}

// TestTornTailTruncated: a crash mid-record loses only that record.
// Open reports what replayed, truncates the garbage, and the next
// append lands on a clean boundary.
func TestTornTailTruncated(t *testing.T) {
	cases := map[string]struct {
		mangle  func([]byte) []byte
		survive int // records expected to replay
	}{
		// Half a record frame: the second record is lost.
		"truncated_frame": {func(b []byte) []byte { return b[:len(b)-5] }, 1},
		// Full frame present, payload cut short.
		"truncated_payload": {func(b []byte) []byte { return b[:len(b)-1] }, 1},
		// Payload intact but a flipped bit breaks the CRC.
		"corrupt_payload": {func(b []byte) []byte {
			b[len(b)-3] ^= 0x40
			return b
		}, 1},
		// An unknown record type byte after both valid records: both
		// survive, the garbage is shed.
		"unknown_type": {func(b []byte) []byte {
			return append(b, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0)
		}, 2},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			h := testHeader()
			l, path := mustCreate(t, h)
			if err := l.AppendRows(5, [][]float64{{1, 2, 3}}); err != nil {
				t.Fatal(err)
			}
			lens := []int64{l.Size()}
			if err := l.AppendRows(6, [][]float64{{7, 8, 9}}); err != nil {
				t.Fatal(err)
			}
			lens = append(lens, l.Size())
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, rep, err := Open(path, SyncPolicy{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Torn {
				t.Fatal("mangled tail not reported torn")
			}
			if len(rep.Records) != tc.survive || rep.Records[0].FirstID != 5 {
				t.Fatalf("replay did not stop at last valid record: %+v", rep.Records)
			}
			if rep.ValidLen != lens[tc.survive-1] {
				t.Fatalf("validLen = %d, want %d", rep.ValidLen, lens[tc.survive-1])
			}
			// The file was truncated back to the valid prefix and the
			// next append replays cleanly.
			if err := l2.AppendDelete(2, 3); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			rep2, err := ReplayFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if rep2.Torn || len(rep2.Records) != tc.survive+1 {
				t.Fatalf("post-truncation log unclean: torn=%v records=%+v",
					rep2.Torn, rep2.Records)
			}
		})
	}
}

// TestHeaderCorruption: header-level damage is fatal, not torn.
func TestHeaderCorruption(t *testing.T) {
	h := testHeader()
	l, path := mustCreate(t, h)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]struct {
		mangle func([]byte) []byte
		want   error
	}{
		"empty":     {func(b []byte) []byte { return nil }, ErrHeader},
		"bad_magic": {func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		"bad_version": {func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			return b
		}, ErrVersion},
		"zero_dim": {func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 0)
			return b
		}, ErrHeader},
		"bad_crc": {func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}, ErrHeader},
		"truncated_ids": {func(b []byte) []byte { return b[:len(b)-8] }, ErrHeader},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			data := append([]byte(nil), clean...)
			if _, err := Replay(tc.mangle(data)); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}

	// Every header error is also an ErrWAL.
	for name, tc := range cases {
		data := append([]byte(nil), clean...)
		if _, err := Replay(tc.mangle(data)); !errors.Is(err, ErrWAL) {
			t.Fatalf("%s: err %v does not wrap ErrWAL", name, err)
		}
	}
}

// TestHeaderValidation: semantic header checks — IDs must ascend and
// sit below NextID.
func TestHeaderValidation(t *testing.T) {
	for name, h := range map[string]Header{
		"descending_ids":  {Dim: 2, NextID: 10, BaseIDs: []int64{3, 1}},
		"duplicate_ids":   {Dim: 2, NextID: 10, BaseIDs: []int64{1, 1}},
		"id_beyond_next":  {Dim: 2, NextID: 2, BaseIDs: []int64{1, 5}},
		"negative_nextid": {Dim: 2, NextID: -1},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Replay(encodeHeader(h)); !errors.Is(err, ErrHeader) {
				t.Fatalf("err = %v, want ErrHeader", err)
			}
		})
	}
	// An empty base (dataset born live) is fine.
	rep, err := Replay(encodeHeader(Header{Dim: 2, NextID: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Header.BaseIDs) != 0 {
		t.Fatal("empty ID table round-trip failed")
	}
}

// TestRecordValidation: non-finite floats and bogus ranges never make
// it into (or out of) the log.
func TestRecordValidation(t *testing.T) {
	l, _ := mustCreate(t, testHeader())
	defer l.Close()
	if err := l.AppendRows(5, nil); err == nil {
		t.Fatal("empty append accepted")
	}
	if err := l.AppendRows(-1, [][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("negative first ID accepted")
	}
	if err := l.AppendRows(5, [][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	if err := l.AppendRows(5, [][]float64{{1, 2, math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := l.AppendRows(5, [][]float64{{1, math.Inf(-1), 3}}); err == nil {
		t.Fatal("-Inf accepted")
	}
	if err := l.AppendDelete(3, 2); err == nil {
		t.Fatal("inverted delete range accepted")
	}
	if err := l.AppendDelete(-1, 2); err == nil {
		t.Fatal("negative delete range accepted")
	}
	// A NaN smuggled past the writer is rejected on replay: craft the
	// record bytes directly.
	payload := make([]byte, 0, 12+8*3)
	payload = binary.LittleEndian.AppendUint32(payload, 1)
	payload = binary.LittleEndian.AppendUint64(payload, 5)
	for _, v := range []float64{1, math.NaN(), 3} {
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
	}
	img := append(encodeHeader(testHeader()), encodeRecord(RecordAppend, payload)...)
	rep, err := Replay(img)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || len(rep.Records) != 0 {
		t.Fatal("NaN row replayed instead of stopping")
	}
}

// TestCreateRejectsBadDim pins writer-side header validation.
func TestCreateRejectsBadDim(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "x.wal"), Header{Dim: 0}, SyncPolicy{}); err == nil {
		t.Fatal("zero-dim header accepted")
	}
}

// TestSyncMode: a SyncAlways log works end to end and counts one
// fsync per appended record (the fsync itself is not observable, but
// the code path and the ledger are).
func TestSyncMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.wal")
	l, err := Create(path, Header{Dim: 2, NextID: 0}, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRows(0, [][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 1 {
		t.Fatalf("syncs after one append = %d, want 1", got)
	}
	// Commit after a per-record sync is a no-op.
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 1 {
		t.Fatalf("syncs after redundant commit = %d, want 1", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rep, err := Open(path, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rep.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(rep.Records))
	}
	if err := l2.AppendDelete(0, 1); err != nil {
		t.Fatal(err)
	}
}

// TestBatchRoundTrip: one AppendBatch frame carrying mixed sub-records
// replays as flattened, stamped records, and costs one frame.
func TestBatchRoundTrip(t *testing.T) {
	h := testHeader()
	l, path := mustCreate(t, h)
	rows1 := [][]float64{{1, 2, 3}, {4, 5, 6}}
	rows2 := [][]float64{{-0.5, math.MaxFloat64, 1e-300}}
	const stamp = int64(1_700_000_000_000_000_000)
	batch := []Record{
		{Type: RecordAppend, FirstID: 5, Rows: rows1},
		{Type: RecordDelete, FromID: 1, ToID: 3},
		{Type: RecordAppend, FirstID: 7, Rows: rows2},
	}
	if err := l.AppendBatch(stamp, batch); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 1 {
		t.Fatalf("frames = %d, want 1 (one frame per batch)", l.Records())
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 1 {
		t.Fatalf("syncs = %d, want 1 (one fsync per batch commit)", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := Open(path, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rep.Torn {
		t.Fatal("clean batch log reported torn")
	}
	if rep.Frames != 1 {
		t.Fatalf("replayed frames = %d, want 1", rep.Frames)
	}
	want := []Record{
		{Type: RecordAppend, FirstID: 5, Rows: rows1, Stamp: stamp},
		{Type: RecordDelete, FromID: 1, ToID: 3, Stamp: stamp},
		{Type: RecordAppend, FirstID: 7, Rows: rows2, Stamp: stamp},
	}
	if !reflect.DeepEqual(rep.Records, want) {
		t.Fatalf("batch records mismatch:\n%+v\n%+v", rep.Records, want)
	}
	if l2.Records() != 1 {
		t.Fatalf("reopened frames = %d, want 1", l2.Records())
	}
	// Mixing batch frames and legacy single records is fine.
	if err := l2.AppendDelete(0, 1); err != nil {
		t.Fatal(err)
	}
	rep2, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Records) != 4 || rep2.Records[3].Stamp != 0 {
		t.Fatalf("mixed log replay wrong: %+v", rep2.Records)
	}
}

// TestBatchValidation: a bad entry anywhere in the batch rejects the
// whole call before any bytes are written.
func TestBatchValidation(t *testing.T) {
	l, _ := mustCreate(t, testHeader())
	defer l.Close()
	before := l.Size()
	good := Record{Type: RecordAppend, FirstID: 5, Rows: [][]float64{{1, 2, 3}}}
	cases := map[string]struct {
		stamp int64
		recs  []Record
	}{
		"empty":          {1, nil},
		"negative_stamp": {-1, []Record{good}},
		"nested_batch":   {1, []Record{good, {Type: RecordBatch}}},
		"bad_width":      {1, []Record{good, {Type: RecordAppend, FirstID: 9, Rows: [][]float64{{1}}}}},
		"nan_row":        {1, []Record{{Type: RecordAppend, FirstID: 9, Rows: [][]float64{{1, math.NaN(), 3}}}}},
		"inverted_range": {1, []Record{{Type: RecordDelete, FromID: 3, ToID: 2}}},
		"no_rows":        {1, []Record{{Type: RecordAppend, FirstID: 9}}},
	}
	for name, tc := range cases {
		if err := l.AppendBatch(tc.stamp, tc.recs); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if l.Size() != before || l.Records() != 0 {
		t.Fatalf("rejected batches left bytes behind: size=%d records=%d", l.Size(), l.Records())
	}
	// A corrupt sub-record poisons the whole frame on replay: craft a
	// batch whose second sub declares a bogus type.
	payload := make([]byte, 0, 64)
	payload = binary.LittleEndian.AppendUint64(payload, 1) // stamp
	payload = binary.LittleEndian.AppendUint32(payload, 2) // two subs
	del := make([]byte, 0, 16)
	del = binary.LittleEndian.AppendUint64(del, 0)
	del = binary.LittleEndian.AppendUint64(del, 2)
	payload = append(payload, byte(RecordDelete))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(del)))
	payload = append(payload, del...)
	payload = append(payload, 0x7f, 0, 0, 0, 0) // unknown sub type
	img := append(encodeHeader(testHeader()), encodeRecord(RecordBatch, payload)...)
	rep, err := Replay(img)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || len(rep.Records) != 0 {
		t.Fatalf("corrupt batch frame partially replayed: torn=%v records=%+v", rep.Torn, rep.Records)
	}
}

// TestParseSyncPolicy pins the -wal-sync grammar.
func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"":              {Mode: SyncBatch},
		"batch":         {Mode: SyncBatch},
		"false":         {Mode: SyncBatch},
		"always":        {Mode: SyncAlways},
		"true":          {Mode: SyncAlways},
		"interval=50ms": {Mode: SyncInterval, Interval: 50 * time.Millisecond},
		"interval=2s":   {Mode: SyncInterval, Interval: 2 * time.Second},
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got != want {
			t.Fatalf("%q: got %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{"nope", "interval=", "interval=abc", "interval=0", "interval=-1s"} {
		if _, err := ParseSyncPolicy(in); err == nil {
			t.Fatalf("%q: accepted", in)
		}
	}
	// String round-trips through the parser.
	for _, p := range []SyncPolicy{
		{Mode: SyncBatch},
		{Mode: SyncAlways},
		{Mode: SyncInterval, Interval: 250 * time.Millisecond},
	} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip %v: got %v err %v", p, back, err)
		}
	}
}

// TestSyncPolicyCommit pins when each policy actually touches the
// disk.
func TestSyncPolicyCommit(t *testing.T) {
	// Batch: appends defer, Commit syncs once, idle Commit is free.
	l, _ := mustCreate(t, testHeader())
	defer l.Close()
	if err := l.AppendRows(5, [][]float64{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 0 {
		t.Fatalf("batch-mode appends synced eagerly: %d", got)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 1 {
		t.Fatalf("commit syncs = %d, want 1", got)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 1 {
		t.Fatalf("idle commit synced: %d", got)
	}

	// Interval: inside the window Commit defers; once the window
	// elapses the next Commit syncs. A 1ns window makes "elapsed"
	// deterministic without sleeping.
	path := filepath.Join(t.TempDir(), "iv.wal")
	li, err := Create(path, testHeader(), SyncPolicy{Mode: SyncInterval, Interval: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	if err := li.AppendDelete(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := li.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := li.Syncs(); got != 1 {
		t.Fatalf("interval commit past window syncs = %d, want 1", got)
	}
	lw, err := Create(filepath.Join(t.TempDir(), "iv2.wal"), testHeader(),
		SyncPolicy{Mode: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := lw.AppendDelete(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := lw.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := lw.Syncs(); got != 0 {
		t.Fatalf("interval commit inside window synced: %d", got)
	}
	// Close flushes the deferred write so nothing acknowledged is
	// still only in the page cache when the handle goes away.
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := lw.Syncs(); got != 1 {
		t.Fatalf("close did not flush dirty interval log: %d syncs", got)
	}
}

// TestBaseMismatchSentinel: ErrBaseMismatch wraps ErrWAL so callers
// report stale logs uniformly.
func TestBaseMismatchSentinel(t *testing.T) {
	if !errors.Is(ErrBaseMismatch, ErrWAL) {
		t.Fatal("ErrBaseMismatch does not wrap ErrWAL")
	}
}
