package datagen

import (
	"fmt"

	"repro/internal/vector"
)

// NamedConfig parameterises ByName, the string-keyed generator
// dispatch shared by the CLIs (hosgen -type, hosserve -gen). Zero
// values fall back to each generator's own defaults.
type NamedConfig struct {
	N int
	// D applies to synthetic/uniform only; the pseudo-real generators
	// have fixed schemas.
	D int
	// Planted is NumOutliers for synthetic and numDeviants for the
	// pseudo-real generators; ignored by uniform.
	Planted int
	// SubspaceDim and Clusters apply to synthetic only.
	SubspaceDim int
	Clusters    int
	Seed        int64
}

// GeneratorNames lists the names ByName accepts.
func GeneratorNames() []string {
	return []string{"synthetic", "uniform", "athlete", "medical", "nba"}
}

// ByName builds the named dataset. Uniform data has no ground truth;
// the zero GroundTruth is returned for it.
func ByName(name string, c NamedConfig) (*vector.Dataset, GroundTruth, error) {
	switch name {
	case "synthetic":
		return GenerateSynthetic(SyntheticConfig{
			N: c.N, D: c.D, NumOutliers: c.Planted,
			OutlierSubspaceDim: c.SubspaceDim, Clusters: c.Clusters, Seed: c.Seed,
		})
	case "uniform":
		ds, err := GenerateUniform(c.N, c.D, c.Seed)
		return ds, GroundTruth{}, err
	case "athlete":
		return Athlete(c.N, c.Planted, c.Seed)
	case "medical":
		return Medical(c.N, c.Planted, c.Seed)
	case "nba":
		return NBA(c.N, c.Planted, c.Seed)
	default:
		return nil, GroundTruth{}, fmt.Errorf("datagen: unknown generator %q (have %v)", name, GeneratorNames())
	}
}
