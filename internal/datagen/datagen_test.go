package datagen

import (
	"math"
	"testing"

	"repro/internal/subspace"
)

func TestGenerateSyntheticShape(t *testing.T) {
	ds, truth, err := GenerateSynthetic(SyntheticConfig{N: 200, D: 6, NumOutliers: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 200 || ds.Dim() != 6 {
		t.Fatalf("shape = (%d,%d)", ds.N(), ds.Dim())
	}
	if len(truth.Outliers) != 5 {
		t.Fatalf("%d outliers", len(truth.Outliers))
	}
	for i, o := range truth.Outliers {
		if o.Index != i {
			t.Fatalf("outlier %d at index %d", i, o.Index)
		}
		if o.Subspace.Card() != 2 {
			t.Fatalf("planted card = %d, want default 2", o.Subspace.Card())
		}
	}
}

func TestGenerateSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{N: 1, D: 3},
		{N: 100, D: 0},
		{N: 100, D: subspace.MaxDim + 1},
		{N: 100, D: 3, NumOutliers: 100},
		{N: 100, D: 3, NumOutliers: -1},
		{N: 100, D: 3, Clusters: -1},
		{N: 100, D: 3, ClusterStdDev: -0.5},
		{N: 100, D: 3, Displacement: -2},
		{N: 100, D: 3, OutlierSubspaceDim: -1},
	}
	for i, cfg := range bad {
		if _, _, err := GenerateSynthetic(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateSyntheticClampsSubspaceDim(t *testing.T) {
	_, truth, err := GenerateSynthetic(SyntheticConfig{N: 50, D: 3, OutlierSubspaceDim: 9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Outliers[0].Subspace.Card() != 3 {
		t.Fatalf("card = %d, want clamped 3", truth.Outliers[0].Subspace.Card())
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{N: 100, D: 5, NumOutliers: 3, Seed: 7}
	a, ta, _ := GenerateSynthetic(cfg)
	b, tb, _ := GenerateSynthetic(cfg)
	for i := 0; i < a.N(); i++ {
		pa, pb := a.Point(i), b.Point(i)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("point %d differs", i)
			}
		}
	}
	for i := range ta.Outliers {
		if ta.Outliers[i] != tb.Outliers[i] {
			t.Fatal("truth differs")
		}
	}
	c, _, _ := GenerateSynthetic(SyntheticConfig{N: 100, D: 5, NumOutliers: 3, Seed: 8})
	same := true
	for j := range a.Point(10) {
		if a.Point(10)[j] != c.Point(10)[j] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical points")
	}
}

// TestOutlierIsExtremeInPlantedDims: in each planted dim the outlier
// must be far outside the inlier range; in unplanted dims within it.
func TestOutlierIsExtremeInPlantedDims(t *testing.T) {
	ds, truth, err := GenerateSynthetic(SyntheticConfig{N: 300, D: 6, NumOutliers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// compute inlier min/max per dim
	lo := make([]float64, 6)
	hi := make([]float64, 6)
	for j := range lo {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for i := len(truth.Outliers); i < ds.N(); i++ {
		for j, v := range ds.Point(i) {
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
	}
	for _, o := range truth.Outliers {
		p := ds.Point(o.Index)
		for j := 0; j < 6; j++ {
			if o.Subspace.Contains(j) {
				if p[j] <= hi[j] {
					t.Fatalf("outlier %d dim %d: %v not beyond inlier max %v", o.Index, j, p[j], hi[j])
				}
			} else if p[j] < lo[j]-3 || p[j] > hi[j]+3 {
				t.Fatalf("outlier %d unplanted dim %d is extreme: %v outside [%v,%v]",
					o.Index, j, p[j], lo[j], hi[j])
			}
		}
	}
}

func TestGroundTruthLookup(t *testing.T) {
	_, truth, _ := GenerateSynthetic(SyntheticConfig{N: 50, D: 4, NumOutliers: 2, Seed: 5})
	if s, ok := truth.ByIndex(0); !ok || s.IsEmpty() {
		t.Fatal("ByIndex(0) missing")
	}
	if _, ok := truth.ByIndex(49); ok {
		t.Fatal("inlier reported as planted")
	}
	idx := truth.Indices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("Indices = %v", idx)
	}
}

func TestGenerateUniform(t *testing.T) {
	ds, err := GenerateUniform(100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 100 || ds.Dim() != 4 {
		t.Fatal("shape")
	}
	for i := 0; i < ds.N(); i++ {
		for _, v := range ds.Point(i) {
			if v < 0 || v > 1 {
				t.Fatalf("uniform value %v out of [0,1]", v)
			}
		}
	}
	if _, err := GenerateUniform(0, 4, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := GenerateUniform(10, 0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestPseudoRealGenerators(t *testing.T) {
	type gen func(n, nd int, seed int64) (ds interface {
		N() int
		Dim() int
		Columns() []string
	}, truthLen int, err error)
	cases := []struct {
		name string
		d    int
		run  func() (int, int, []string, GroundTruth, error)
	}{
		{"athlete", 6, func() (int, int, []string, GroundTruth, error) {
			ds, tr, err := Athlete(150, 4, 1)
			if err != nil {
				return 0, 0, nil, tr, err
			}
			return ds.N(), ds.Dim(), ds.Columns(), tr, nil
		}},
		{"medical", 8, func() (int, int, []string, GroundTruth, error) {
			ds, tr, err := Medical(150, 4, 1)
			if err != nil {
				return 0, 0, nil, tr, err
			}
			return ds.N(), ds.Dim(), ds.Columns(), tr, nil
		}},
		{"nba", 7, func() (int, int, []string, GroundTruth, error) {
			ds, tr, err := NBA(150, 4, 1)
			if err != nil {
				return 0, 0, nil, tr, err
			}
			return ds.N(), ds.Dim(), ds.Columns(), tr, nil
		}},
	}
	for _, c := range cases {
		n, d, cols, truth, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if n != 150 || d != c.d {
			t.Fatalf("%s: shape (%d,%d)", c.name, n, d)
		}
		if len(cols) != c.d {
			t.Fatalf("%s: %d column names", c.name, len(cols))
		}
		if len(truth.Outliers) != 4 {
			t.Fatalf("%s: %d deviants", c.name, len(truth.Outliers))
		}
		for _, o := range truth.Outliers {
			if o.Subspace.Card() < 1 || o.Subspace.Card() > 2 {
				t.Fatalf("%s: deviant card %d", c.name, o.Subspace.Card())
			}
		}
	}
}

func TestPseudoRealValidation(t *testing.T) {
	if _, _, err := Athlete(5, 1, 1); err == nil {
		t.Fatal("tiny n accepted")
	}
	if _, _, err := Medical(100, 60, 1); err == nil {
		t.Fatal("too many deviants accepted")
	}
	if _, _, err := NBA(100, -1, 1); err == nil {
		t.Fatal("negative deviants accepted")
	}
}
