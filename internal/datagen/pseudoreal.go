package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/vector"
)

// The demo paper promises "real-life datasets"; offline we substitute
// generators that mimic the structure of the motivating applications
// in §1 (athlete training programs, medical systems) plus the NBA-
// style season-statistics table used by the authors' journal version.
// Each generator produces correlated, mixed-scale attributes with a
// few planted deviants whose deviating attribute subsets are recorded
// as ground truth — the property that makes them usable for
// effectiveness experiments.

// Athlete generates a training-performance table: n athletes with
// attributes {sprint100m, enduranceKm, strengthKg, jumpCm,
// recoveryHrs, techniqueScore}. Attributes correlate through a latent
// "fitness" factor. numDeviants athletes are planted who deviate in a
// specific 1–2 attribute subset (e.g. unusually poor endurance for
// their fitness), mirroring the paper's "identify the specific
// weakness (subspace) of an athlete" scenario.
func Athlete(n, numDeviants int, seed int64) (*vector.Dataset, GroundTruth, error) {
	const d = 6
	if err := checkPseudoRealArgs(n, numDeviants); err != nil {
		return nil, GroundTruth{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		fitness := rng.NormFloat64() // latent factor
		rows[i] = []float64{
			11.5 - 0.6*fitness + rng.NormFloat64()*0.15, // 100m sprint (s), lower is better
			8 + 2.5*fitness + rng.NormFloat64()*0.6,     // endurance run (km)
			90 + 18*fitness + rng.NormFloat64()*5,       // strength (kg)
			55 + 9*fitness + rng.NormFloat64()*2.5,      // vertical jump (cm)
			30 - 4*fitness + rng.NormFloat64()*2,        // recovery (hrs), lower is better
			6 + 1.2*fitness + rng.NormFloat64()*0.5,     // technique score
		}
	}
	truth := plantDeviants(rng, rows, numDeviants, d, []float64{3, 12, 80, 40, 25, 6})
	ds, err := vector.FromRows(rows)
	if err != nil {
		return nil, GroundTruth{}, err
	}
	if err := ds.SetColumns([]string{"sprint100m", "enduranceKm", "strengthKg", "jumpCm", "recoveryHrs", "technique"}); err != nil {
		return nil, GroundTruth{}, err
	}
	return ds, truth, nil
}

// Medical generates a lab-results table: {sysBP, diaBP, glucose,
// cholesterol, heartRate, bmi, creatinine, hemoglobin}. Attributes
// correlate through a latent metabolic factor; planted patients are
// abnormal in a small lab subset — the paper's "identify the
// subspaces in which a particular patient is found abnormal".
func Medical(n, numDeviants int, seed int64) (*vector.Dataset, GroundTruth, error) {
	const d = 8
	if err := checkPseudoRealArgs(n, numDeviants); err != nil {
		return nil, GroundTruth{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		metab := rng.NormFloat64()
		rows[i] = []float64{
			120 + 9*metab + rng.NormFloat64()*6,       // systolic BP
			78 + 6*metab + rng.NormFloat64()*4,        // diastolic BP
			95 + 11*metab + rng.NormFloat64()*7,       // glucose
			190 + 22*metab + rng.NormFloat64()*14,     // cholesterol
			70 + 5*metab + rng.NormFloat64()*5,        // heart rate
			24 + 2.6*metab + rng.NormFloat64()*1.4,    // BMI
			0.95 + 0.1*metab + rng.NormFloat64()*0.08, // creatinine
			14 - 0.7*metab + rng.NormFloat64()*0.7,    // hemoglobin
		}
	}
	truth := plantDeviants(rng, rows, numDeviants, d,
		[]float64{70, 45, 90, 130, 60, 16, 1.2, 6})
	ds, err := vector.FromRows(rows)
	if err != nil {
		return nil, GroundTruth{}, err
	}
	if err := ds.SetColumns([]string{"sysBP", "diaBP", "glucose", "cholesterol", "heartRate", "bmi", "creatinine", "hemoglobin"}); err != nil {
		return nil, GroundTruth{}, err
	}
	return ds, truth, nil
}

// NBA generates a season-statistics table: {pointsPG, reboundsPG,
// assistsPG, stealsPG, blocksPG, minutesPG, fgPct}. Player archetypes
// (guard/forward/centre) create multi-cluster structure; planted
// players have anomalous stat combinations.
func NBA(n, numDeviants int, seed int64) (*vector.Dataset, GroundTruth, error) {
	const d = 7
	if err := checkPseudoRealArgs(n, numDeviants); err != nil {
		return nil, GroundTruth{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	// archetype means: guard, forward, centre
	archetypes := [][]float64{
		{16, 3.5, 7, 1.6, 0.3, 32, 0.44},
		{14, 7.0, 2.5, 1.0, 0.8, 30, 0.47},
		{11, 10.5, 1.5, 0.6, 1.8, 27, 0.55},
	}
	spread := []float64{4, 1.5, 1.2, 0.4, 0.35, 4, 0.03}
	rows := make([][]float64, n)
	for i := range rows {
		a := archetypes[rng.Intn(len(archetypes))]
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = a[j] + rng.NormFloat64()*spread[j]
		}
	}
	truth := plantDeviants(rng, rows, numDeviants, d,
		[]float64{25, 9, 8, 2.5, 2.2, 20, 0.2})
	ds, err := vector.FromRows(rows)
	if err != nil {
		return nil, GroundTruth{}, err
	}
	if err := ds.SetColumns([]string{"ptsPG", "rebPG", "astPG", "stlPG", "blkPG", "minPG", "fgPct"}); err != nil {
		return nil, GroundTruth{}, err
	}
	return ds, truth, nil
}

func checkPseudoRealArgs(n, numDeviants int) error {
	if n < 10 {
		return fmt.Errorf("datagen: n = %d too small", n)
	}
	if numDeviants < 0 || numDeviants >= n/2 {
		return fmt.Errorf("datagen: numDeviants = %d out of [0,%d)", numDeviants, n/2)
	}
	return nil
}

// plantDeviants displaces the first numDeviants rows in a random 1–2
// attribute subset by the per-attribute displacement amounts and
// records the ground truth.
func plantDeviants(rng *rand.Rand, rows [][]float64, numDeviants, d int, displacement []float64) GroundTruth {
	var truth GroundTruth
	for i := 0; i < numDeviants; i++ {
		card := 1 + rng.Intn(2)
		mask := randomMask(rng, d, card)
		mask.EachDim(func(dim int) {
			sign := 1.0
			if rng.Float64() < 0.5 {
				sign = -1
			}
			rows[i][dim] += sign * displacement[dim]
		})
		truth.Outliers = append(truth.Outliers, PlantedOutlier{Index: i, Subspace: mask})
	}
	return truth
}
