// Package datagen generates the evaluation datasets of the
// reproduction: synthetic clustered data with planted outliers whose
// ground-truth outlying subspaces are known, and three "pseudo-real"
// generators standing in for the demo's real-life datasets (athlete
// training, medical labs, NBA-like season stats) — see the
// substitution note in DESIGN.md.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/subspace"
	"repro/internal/vector"
)

// PlantedOutlier records one planted outlier and the subspace in
// which it was made to deviate.
type PlantedOutlier struct {
	// Index of the point in the generated dataset.
	Index int
	// Subspace whose dimensions were displaced. By construction the
	// point is an extreme outlier in this subspace (and, by OD
	// monotonicity, in its supersets) and ordinary elsewhere.
	Subspace subspace.Mask
}

// GroundTruth maps planted outlier indices to their planted
// subspaces.
type GroundTruth struct {
	Outliers []PlantedOutlier
}

// ByIndex returns the planted subspace for a point index, or
// (Empty, false).
func (g GroundTruth) ByIndex(idx int) (subspace.Mask, bool) {
	for _, o := range g.Outliers {
		if o.Index == idx {
			return o.Subspace, true
		}
	}
	return subspace.Empty, false
}

// Indices returns the planted outlier indices in ascending order.
func (g GroundTruth) Indices() []int {
	out := make([]int, len(g.Outliers))
	for i, o := range g.Outliers {
		out[i] = o.Index
	}
	return out
}

// SyntheticConfig parameterises GenerateSynthetic.
type SyntheticConfig struct {
	// N is the total number of points (inliers + outliers).
	N int
	// D is the dimensionality (≤ subspace.MaxDim).
	D int
	// Clusters is the number of Gaussian clusters (default 3).
	Clusters int
	// ClusterStdDev is the per-dimension spread of each cluster
	// (default 0.5).
	ClusterStdDev float64
	// NumOutliers is how many outliers to plant (default 1; must be
	// < N).
	NumOutliers int
	// OutlierSubspaceDim is the cardinality of each planted subspace
	// (default 2, clamped to [1, D]).
	OutlierSubspaceDim int
	// Displacement is how far (in cluster-stddev units) outliers are
	// pushed in their planted dims (default 20).
	Displacement float64
	// Seed drives all randomness; identical configs generate
	// identical datasets.
	Seed int64
}

func (c *SyntheticConfig) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("datagen: N = %d too small", c.N)
	}
	if c.D < 1 || c.D > subspace.MaxDim {
		return fmt.Errorf("datagen: D = %d out of [1,%d]", c.D, subspace.MaxDim)
	}
	if c.Clusters == 0 {
		c.Clusters = 3
	}
	if c.Clusters < 1 {
		return fmt.Errorf("datagen: Clusters = %d", c.Clusters)
	}
	if c.ClusterStdDev == 0 {
		c.ClusterStdDev = 0.5
	}
	if c.ClusterStdDev < 0 {
		return fmt.Errorf("datagen: negative ClusterStdDev")
	}
	if c.NumOutliers == 0 {
		c.NumOutliers = 1
	}
	if c.NumOutliers < 0 || c.NumOutliers >= c.N {
		return fmt.Errorf("datagen: NumOutliers = %d out of [0,%d)", c.NumOutliers, c.N)
	}
	if c.OutlierSubspaceDim == 0 {
		c.OutlierSubspaceDim = 2
	}
	if c.OutlierSubspaceDim < 1 {
		return fmt.Errorf("datagen: OutlierSubspaceDim = %d", c.OutlierSubspaceDim)
	}
	if c.OutlierSubspaceDim > c.D {
		c.OutlierSubspaceDim = c.D
	}
	if c.Displacement == 0 {
		c.Displacement = 20
	}
	if c.Displacement <= 0 {
		return fmt.Errorf("datagen: Displacement must be positive")
	}
	return nil
}

// GenerateSynthetic builds a clustered dataset with planted subspace
// outliers and returns it with its ground truth. Outliers occupy the
// first NumOutliers indices (convenient for experiments; callers that
// need them shuffled can permute).
//
// Construction: cluster centres are drawn uniformly in [0,10]^D;
// inliers are Gaussian around a random centre. Each outlier starts as
// an inlier of some cluster, then its planted dimensions are
// displaced by Displacement·ClusterStdDev away from every centre —
// extreme in the planted subspace, ordinary in all others.
func GenerateSynthetic(cfg SyntheticConfig) (*vector.Dataset, GroundTruth, error) {
	if err := cfg.normalize(); err != nil {
		return nil, GroundTruth{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centers := make([][]float64, cfg.Clusters)
	for c := range centers {
		centers[c] = make([]float64, cfg.D)
		for j := range centers[c] {
			centers[c][j] = rng.Float64() * 10
		}
	}
	sample := func() []float64 {
		ctr := centers[rng.Intn(cfg.Clusters)]
		p := make([]float64, cfg.D)
		for j := range p {
			p[j] = ctr[j] + rng.NormFloat64()*cfg.ClusterStdDev
		}
		return p
	}

	rows := make([][]float64, cfg.N)
	var truth GroundTruth
	for i := 0; i < cfg.NumOutliers; i++ {
		p := sample()
		mask := randomMask(rng, cfg.D, cfg.OutlierSubspaceDim)
		mask.EachDim(func(dim int) {
			// Displace beyond the whole centre range so the point is
			// extreme in this dim regardless of cluster.
			p[dim] = 10 + cfg.Displacement*cfg.ClusterStdDev + rng.Float64()*cfg.ClusterStdDev
		})
		rows[i] = p
		truth.Outliers = append(truth.Outliers, PlantedOutlier{Index: i, Subspace: mask})
	}
	for i := cfg.NumOutliers; i < cfg.N; i++ {
		rows[i] = sample()
	}

	ds, err := vector.FromRows(rows)
	if err != nil {
		return nil, GroundTruth{}, err
	}
	return ds, truth, nil
}

// randomMask draws a random cardinality-m subspace of d dims.
func randomMask(rng *rand.Rand, d, m int) subspace.Mask {
	perm := rng.Perm(d)
	return subspace.New(perm[:m]...)
}

// GenerateUniform returns n points uniform in [0,1]^d — the
// unstructured stress case (X-tree supernodes, weak pruning).
func GenerateUniform(n, d int, seed int64) (*vector.Dataset, error) {
	if n < 1 || d < 1 || d > subspace.MaxDim {
		return nil, fmt.Errorf("datagen: invalid shape n=%d d=%d", n, d)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.Float64()
		}
	}
	return vector.FromRows(rows)
}
