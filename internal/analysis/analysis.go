// Package analysis is the repo-local static-analysis framework behind
// tools/hosvet. It mirrors the shape of golang.org/x/tools/go/analysis
// — an Analyzer owns a Run function over a type-checked Pass and
// reports positioned Diagnostics — but is built on the standard
// library alone (go/ast + go/types + export data from `go list
// -export`), because this module deliberately has zero external
// dependencies.
//
// The analyzers themselves live in subpackages (viewpin, durability,
// statslock, hotpath, determinism, lostcancel); each encodes one
// invariant of this codebase that the compiler cannot see and that was
// previously guarded only by tests that catch violations after the
// fact. tools/hosvet bundles them into one vet-style binary gated in
// CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("viewpin").
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects the pass and reports violations via Pass.Reportf.
	Run func(*Pass)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test syntax trees, comments
	// included (directives like //hos:hotpath live there).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic the way go vet does:
// path:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// NewPass binds an analyzer to a package and a shared diagnostic sink.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink *[]Diagnostic) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, diags: sink}
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over one package and returns the
// findings sorted by position.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(NewPass(a, fset, files, pkg, info, &diags))
	}
	Sort(diags)
	return diags
}

// Sort orders diagnostics by file, line, column, analyzer.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---- shared helpers used by several analyzers ----

// HasDirective reports whether the comment group carries the given
// //hos: directive (e.g. name "hotpath" matches "//hos:hotpath") and
// returns any argument text following it.
func HasDirective(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//hos:" + name
	for _, c := range doc.List {
		if c.Text == prefix {
			return "", true
		}
		if rest, found := strings.CutPrefix(c.Text, prefix+" "); found {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// IsAtomicPointerTo reports whether t (after pointer indirection) is
// sync/atomic.Pointer[E] with an element type named elem.
func IsAtomicPointerTo(t types.Type, elem string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return false
	}
	en, ok := args.At(0).(*types.Named)
	return ok && en.Obj().Name() == elem
}

// NamedType returns the named type behind t, unwrapping pointers and
// aliases, or nil.
func NamedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// IsPkgCall reports whether call is pkgpath.name(...) — a call of a
// package-level function of the package with import path pkgpath.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgpath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return isPkgSelector(info, sel, pkgpath)
}

// PkgFunc returns (pkgpath, funcname) when call's function is a
// selector on an imported package, else ("", "").
func PkgFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// CalleeInPkg returns the *types.Func that call invokes when it
// resolves to a function or method declared in pkg, else nil. Used by
// analyzers that follow same-package helper calls.
func CalleeInPkg(info *types.Info, pkg *types.Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() != pkg {
		return nil
	}
	return f
}

func isPkgSelector(info *types.Info, sel *ast.SelectorExpr, pkgpath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgpath
}

// FuncScopes yields every function body in the file as an independent
// scope: each FuncDecl, and each FuncLit not nested inside another
// FuncLit of the same declaration is yielded with its own body. A
// function literal is a separate execution context (a job closure, a
// goroutine body), so invariants like "one view load per request path"
// apply to it independently of its enclosing declaration.
type FuncScope struct {
	// Decl is the enclosing declaration (for naming); nil only for
	// file-scope var initializers (not yielded).
	Decl *ast.FuncDecl
	// Lit is non-nil when the scope is a function literal.
	Lit *ast.FuncLit
	// Body is the scope's statement block.
	Body *ast.BlockStmt
}

// Name returns a human-readable scope name for diagnostics.
func (s FuncScope) Name() string {
	if s.Decl == nil {
		return "func literal"
	}
	if s.Lit != nil {
		return "func literal in " + s.Decl.Name.Name
	}
	return s.Decl.Name.Name
}

// Scopes returns every function scope in the file: each declared
// function (with literals excluded from its own scope) and each
// top-level-within-a-declaration function literal.
func Scopes(file *ast.File) []FuncScope {
	var out []FuncScope
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncScope{Decl: fd, Body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				// Each literal gets its own scope; InspectShallow in
				// analyzers stops at literal boundaries, so every body
				// is analyzed exactly once.
				out = append(out, FuncScope{Decl: fd, Lit: lit, Body: lit.Body})
			}
			return true
		})
	}
	return out
}

// InspectShallow walks the scope's body without descending into
// nested function literals — those are separate Scopes entries.
func InspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return false
		}
		return fn(n)
	})
}
