package viewpin_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/viewpin"
)

func TestViewpin(t *testing.T) {
	antest.Run(t, "testdata/src/a", viewpin.Analyzer)
}
