// Package viewpin checks that each request path pins exactly one
// epoch view. A dataset's serving state is published through an
// atomic.Pointer[view]; a handler that loads it twice can observe two
// different epochs in one request — the torn read the epoch/COW design
// exists to prevent. The rule: within one function scope, the pointer
// for a given dataset may be loaded at most once, whether through
// .Load() on the atomic field or through a *view-returning accessor
// method. Load once, bind to a local, pass the *view by value.
package viewpin

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

const doc = "viewpin: at most one epoch view load per request path"

// Analyzer is the viewpin pass.
var Analyzer = &analysis.Analyzer{
	Name: "viewpin",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, sc := range analysis.Scopes(file) {
			counts := make(map[string]int)
			analysis.InspectShallow(sc.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 0 {
					return true
				}
				key, isLoad := loadKey(pass, call)
				if !isLoad {
					return true
				}
				counts[key]++
				if counts[key] > 1 {
					pass.Reportf(call.Pos(),
						"epoch view for %q loaded %d times in %s; the epoch may change between loads — load once and pass the *view",
						key, counts[key], sc.Name())
				}
				return true
			})
		}
	}
}

// loadKey classifies call as an epoch-view load and returns a key
// identifying which dataset's pointer it reads. Two forms count:
// x.cur.Load() on an atomic.Pointer[view] field, and a zero-argument
// accessor method returning *view (the d.view() idiom). Both forms on
// the same receiver share a key, so mixing them is still a double
// load.
func loadKey(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name == "Load" && analysis.IsAtomicPointerTo(pass.Info.TypeOf(sel.X), "view") {
		// d.cur.Load(): key by the owner of the pointer field.
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			return types.ExprString(inner.X), true
		}
		return types.ExprString(sel.X), true
	}
	// Accessor form: a method call with no arguments whose result is
	// *view of the package under analysis.
	msel, ok := pass.Info.Selections[sel]
	if !ok || msel.Kind() != types.MethodVal {
		return "", false
	}
	rt := pass.Info.TypeOf(call)
	if rt == nil {
		return "", false
	}
	if _, isPtr := types.Unalias(rt).(*types.Pointer); !isPtr {
		return "", false
	}
	named := analysis.NamedType(rt)
	if named == nil || named.Obj().Name() != "view" || named.Obj().Pkg() != pass.Pkg {
		return "", false
	}
	return types.ExprString(sel.X), true
}
