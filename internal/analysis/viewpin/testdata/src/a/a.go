package a

import (
	"runtime"
	"sync/atomic"
)

type view struct{ n int }

type dataset struct {
	cur atomic.Pointer[view]
}

// view is the accessor form; its single internal Load is fine.
func (d *dataset) view() *view { return d.cur.Load() }

func doubleLoad(d *dataset) int {
	a := d.cur.Load()
	b := d.cur.Load() // want `loaded 2 times`
	return a.n + b.n
}

func doubleAccessor(d *dataset) int {
	return d.view().n + d.view().n // want `loaded 2 times`
}

func mixedForms(d *dataset) int {
	v := d.view()
	w := d.cur.Load() // want `loaded 2 times`
	return v.n + w.n
}

// A single load passed by value is the blessed pattern.
func singlePinned(d *dataset) int {
	v := d.view()
	return use(v) + use(v)
}

func use(v *view) int { return v.n }

// Distinct datasets may each pin their own view.
func twoDatasets(a, b *dataset) int {
	return a.view().n + b.view().n
}

// A function literal is its own execution context (a job body); its
// load is independent of the enclosing function's.
func closureScope(d *dataset) func() int {
	v := d.view()
	_ = v
	return func() int { return d.view().n }
}

// A single call site inside a loop is one pin per iteration, not a
// torn read within one path.
func loopSingle(d *dataset, rounds int) int {
	t := 0
	for i := 0; i < rounds; i++ {
		t += d.view().n
	}
	return t
}

// A bare atomic.Pointer[view] variable (no owning struct) still pins.
var global atomic.Pointer[view]

func globalDouble() int {
	return global.Load().n + global.Load().n // want `loaded 2 times`
}

// --- shapes that must NOT count as view loads ---

type notView struct{ m int }

// other returns a pointer, but not to view.
func (d *dataset) other() *notView { return &notView{} }

// clone returns a non-pointer.
func (d *dataset) clone() dataset { return dataset{} }

// fake has a method literally named Load on a non-atomic type.
type fake struct{}

func (fake) Load() int { return 0 }

// hooks carries a zero-arg func-typed field: a FieldVal call, not a
// method.
type hooks struct{ fn func() *view }

func freshView() *view { return &view{} }

func notLoads(d *dataset, f fake, h hooks) int {
	a := d.other()
	b := d.other()
	c := d.clone()
	e := d.clone()
	t := f.Load() + f.Load()
	t += runtime.NumCPU() + runtime.NumCPU()
	u := h.fn()
	w := h.fn()
	x := freshView()
	y := freshView()
	return a.m + b.m + c.cur.Load().n + e.cur.Load().n + t + u.n + w.n + x.n + y.n
}
