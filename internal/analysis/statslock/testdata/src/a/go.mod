module a

go 1.23
