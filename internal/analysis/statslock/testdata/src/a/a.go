package a

import "sync"

//hos:statslock mu
type serverStats struct {
	mu   sync.Mutex
	hits int64
	ring []int
	next int
}

// unguarded has no directive; the analyzer leaves it alone.
type unguarded struct {
	mu sync.Mutex
	n  int
}

func (u *unguarded) bump() { u.n++ }

func (s *serverStats) recordHit() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

func (s *serverStats) recordDeferred(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring[s.next] = v
	s.next++
}

func (s *serverStats) bareWrite() {
	s.hits++ // want `without holding its mutex`
}

func (s *serverStats) afterUnlock() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	s.next++ // want `without holding its mutex`
}

// The Locked suffix is the caller-holds-lock convention.
func (s *serverStats) observeLocked(v int) {
	s.ring[s.next] = v
	s.next++
}

// A freshly constructed, unshared value may be initialized bare.
func newStats() *serverStats {
	s := &serverStats{ring: make([]int, 8)}
	s.next = 0
	return s
}

// Reads never need the write lock from this analyzer's point of view.
func (s *serverStats) peek() int64 {
	return s.hits
}
