package statslock_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/statslock"
)

func TestStatslock(t *testing.T) {
	antest.Run(t, "testdata/src/a", statslock.Analyzer)
}
