// Package statslock enforces the single-lock commit discipline on
// stats structs. A struct annotated
//
//	//hos:statslock mu
//
// may have its non-mutex fields written only while mu is held. The
// snapshot contract (no torn reads: every counter in a /stats
// response comes from one consistent commit) depends on every write
// path taking the same mutex. Exemptions encode the repo's
// conventions: methods whose name ends in "Locked" are documented as
// caller-holds-lock; values freshly constructed in the same scope are
// not yet shared and may be initialized bare.
package statslock

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

const doc = "statslock: annotated stats structs are written only under their mutex"

// Analyzer is the statslock pass.
var Analyzer = &analysis.Analyzer{
	Name: "statslock",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) {
	guarded := guardedTypes(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, sc := range analysis.Scopes(file) {
			if sc.Lit == nil && sc.Decl != nil && strings.HasSuffix(sc.Decl.Name.Name, "Locked") {
				// Convention: xLocked runs with the lock already held
				// by its caller.
				continue
			}
			checkScope(pass, sc, guarded)
		}
	}
}

// guardedTypes maps each //hos:statslock-annotated named type to its
// mutex field name (default "mu").
func guardedTypes(pass *analysis.Pass) map[*types.TypeName]string {
	out := make(map[*types.TypeName]string)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				arg, found := analysis.HasDirective(ts.Doc, "statslock")
				if !found {
					arg, found = analysis.HasDirective(gd.Doc, "statslock")
				}
				if !found {
					continue
				}
				if arg == "" {
					arg = "mu"
				}
				if obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[obj] = arg
				}
			}
		}
	}
	return out
}

const (
	evLock = iota
	evUnlock
	evWrite
)

type event struct {
	kind  int
	key   string // receiver expression owning the mutex / the fields
	field string // written field, for diagnostics
	pos   token.Pos
}

func checkScope(pass *analysis.Pass, sc analysis.FuncScope, guarded map[*types.TypeName]string) {
	deferred := make(map[*ast.CallExpr]bool)
	fresh := make(map[types.Object]bool)
	var evs []event

	analysis.InspectShallow(sc.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				markFresh(pass, n, guarded, fresh)
				return true
			}
			for _, lhs := range n.Lhs {
				if ev, ok := writeEvent(pass, lhs, guarded); ok {
					evs = append(evs, ev)
				}
			}
		case *ast.IncDecStmt:
			if ev, ok := writeEvent(pass, n.X, guarded); ok {
				evs = append(evs, ev)
			}
		case *ast.CallExpr:
			if kind, key, ok := lockEvent(pass, n, guarded); ok {
				if kind == evUnlock && deferred[n] {
					// A deferred Unlock releases at return; it never
					// ends the critical section mid-body.
					return true
				}
				evs = append(evs, event{kind: kind, key: key, pos: n.Pos()})
			}
		}
		return true
	})

	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	held := make(map[string]bool)
	for _, ev := range evs {
		switch ev.kind {
		case evLock:
			held[ev.key] = true
		case evUnlock:
			held[ev.key] = false
		case evWrite:
			if held[ev.key] {
				continue
			}
			if isFresh(pass, ev, fresh) {
				continue
			}
			pass.Reportf(ev.pos,
				"field %s of stats struct %q written without holding its mutex in %s",
				ev.field, ev.key, sc.Name())
		}
	}
}

// writeEvent classifies lhs as a write to a guarded struct's field,
// unwrapping index/star/paren down to the base selector.
func writeEvent(pass *analysis.Pass, lhs ast.Expr, guarded map[*types.TypeName]string) (event, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			goto unwrapped
		}
	}
unwrapped:
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	named := analysis.NamedType(pass.Info.TypeOf(sel.X))
	if named == nil {
		return event{}, false
	}
	mu, ok := guarded[named.Obj()]
	if !ok || sel.Sel.Name == mu {
		return event{}, false
	}
	return event{
		kind:  evWrite,
		key:   types.ExprString(sel.X),
		field: sel.Sel.Name,
		pos:   lhs.Pos(),
	}, true
}

// lockEvent matches x.mu.Lock() / x.mu.Unlock() where x is a guarded
// struct and mu its declared mutex field. RLock does not count: the
// write side needs the exclusive lock.
func lockEvent(pass *analysis.Pass, call *ast.CallExpr, guarded map[*types.TypeName]string) (int, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock":
		kind = evLock
	case "Unlock":
		kind = evUnlock
	default:
		return 0, "", false
	}
	msel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	named := analysis.NamedType(pass.Info.TypeOf(msel.X))
	if named == nil {
		return 0, "", false
	}
	mu, ok := guarded[named.Obj()]
	if !ok || msel.Sel.Name != mu {
		return 0, "", false
	}
	return kind, types.ExprString(msel.X), true
}

// markFresh records variables defined in this scope from a composite
// literal (or its address) of a guarded type: until they are shared,
// bare initialization writes are fine.
func markFresh(pass *analysis.Pass, n *ast.AssignStmt, guarded map[*types.TypeName]string, fresh map[types.Object]bool) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		rhs := n.Rhs[i]
		if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
			rhs = u.X
		}
		if _, ok := rhs.(*ast.CompositeLit); !ok {
			continue
		}
		named := analysis.NamedType(pass.Info.TypeOf(n.Rhs[i]))
		if named == nil {
			continue
		}
		if _, ok := guarded[named.Obj()]; !ok {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			fresh[obj] = true
		}
	}
}

// isFresh reports whether the write's base expression is a locally
// constructed, not-yet-shared value.
func isFresh(pass *analysis.Pass, ev event, fresh map[types.Object]bool) bool {
	if len(fresh) == 0 {
		return false
	}
	for obj := range fresh {
		if obj.Name() == ev.key {
			return true
		}
	}
	return false
}
