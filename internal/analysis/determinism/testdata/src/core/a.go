// Package core mimics an engine package: its module path ends in
// internal/core, putting it in the determinism analyzer's scope.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func globalRand() float64 {
	return rand.Float64() // want `non-seeded randomness rand\.Float64`
}

func shuffled(n int) []int {
	p := rand.Perm(n) // want `non-seeded randomness rand\.Perm`
	return p
}

func clock() int64 {
	return time.Now().UnixNano() // want `wall-clock read time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time\.Since`
}

// Durations as values are fine; only reading the clock is flagged.
func budget() time.Duration {
	return 50 * time.Millisecond
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `depend on map iteration order`
		out = append(out, k)
	}
	return out
}

// Canonical-order helpers named Sort* count as sorting even though
// they do not live in the sort package.
func sortIDs(out []int) { sort.Ints(out) }

func canonicalValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sortIDs(out)
	return out
}

// Order-independent reductions over maps are fine.
func total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// A slice born inside the loop body is per-iteration state, not a
// leaked ordering.
func perIteration(m map[string][]int, want int) int {
	hits := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			if v == want {
				local = append(local, v)
			}
		}
		hits += len(local)
	}
	return hits
}
