module example/internal/core

go 1.23
