// Package httpapi is outside the determinism scope: serving code may
// read the clock and use the global rand freely.
package httpapi

import (
	"math/rand"
	"time"
)

func jitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Millisecond))) + time.Since(time.Now())
}
