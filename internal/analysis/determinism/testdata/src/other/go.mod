module example/internal/httpapi

go 1.23
