package determinism_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	antest.Run(t, "testdata/src/core", determinism.Analyzer)
}

func TestOutOfScopePackagesIgnored(t *testing.T) {
	antest.Run(t, "testdata/src/other", determinism.Analyzer)
}
