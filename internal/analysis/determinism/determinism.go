// Package determinism keeps the algorithmic core reproducible. The
// conformance harness pins linear ≡ xtree, append ≡ rebuild, and
// cluster ≡ single-node — equivalences that only hold if the engine
// packages are pure functions of their inputs. Within the scoped
// packages (core, xtree, od, subspace, knn, vector, lattice) the
// analyzer flags wall-clock reads (time.Now/Since/Until), non-seeded
// math/rand package-level functions (seeded rand.New(rand.NewSource)
// instances are fine), and map iterations that append to an outer
// slice without a subsequent sort — the classic
// iteration-order-dependent result.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

const doc = "determinism: engine packages must be pure functions of their inputs"

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  doc,
	Run:  run,
}

// scopeSuffixes are the import-path tails of the deterministic
// engine packages.
var scopeSuffixes = []string{
	"internal/core",
	"internal/xtree",
	"internal/od",
	"internal/subspace",
	"internal/knn",
	"internal/vector",
	"internal/lattice",
}

// wallClock lists the time functions that read the wall clock.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededOnly lists the math/rand names that construct seeded sources
// rather than draw from the global one.
var seededOnly = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func inScope(path string) bool {
	for _, s := range scopeSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) {
	if !inScope(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, sc := range analysis.Scopes(file) {
			analysis.InspectShallow(sc.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, n)
				case *ast.RangeStmt:
					checkMapRange(pass, sc, n)
				}
				return true
			})
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name := analysis.PkgFunc(pass.Info, call)
	switch pkg {
	case "time":
		if wallClock[name] {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in a deterministic engine package; thread timestamps in from the caller", name)
		}
	case "math/rand", "math/rand/v2":
		if !seededOnly[name] {
			pass.Reportf(call.Pos(),
				"non-seeded randomness rand.%s in a deterministic engine package; use a seeded rand.New(rand.NewSource(...))", name)
		}
	}
}

// checkMapRange flags `for k := range m { out = append(out, ...) }`
// where out is declared outside the loop and never handed to
// sort/slices afterwards: the result order then depends on map
// iteration order.
func checkMapRange(pass *analysis.Pass, sc analysis.FuncScope, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := types.Unalias(t).Underlying().(*types.Map); !ok {
		return
	}
	for _, target := range appendTargets(pass, rs) {
		if sortedAfter(pass, sc, rs, target) {
			continue
		}
		pass.Reportf(rs.For,
			"iterating a map to build slice %q makes the result order depend on map iteration order; sort it afterwards or iterate a sorted key list", target.Name())
	}
}

// appendTargets returns the outer-declared slice variables the range
// body appends to.
func appendTargets(pass *analysis.Pass, rs *ast.RangeStmt) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			lid, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			v := varOf(pass, lid)
			if v == nil || seen[v] || v.Pos() >= rs.Pos() {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

func varOf(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// sortedAfter reports whether, later in the same scope, v is passed
// to a sort or slices function — the caller restores a canonical
// order before the map order can leak out.
func sortedAfter(pass *analysis.Pass, sc analysis.FuncScope, rs *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(sc.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortingCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pass, arg, v) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// isSortingCall matches the standard sort/slices packages and
// Sort-named helpers anywhere (the repo's canonical-order helpers,
// e.g. subspace.SortMasks, follow that naming).
func isSortingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if pkg, _ := analysis.PkgFunc(pass.Info, call); pkg == "sort" || pkg == "slices" {
		return true
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "sort")
}

func refersTo(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && varOf(pass, id) == v {
			found = true
		}
		return !found
	})
	return found
}
