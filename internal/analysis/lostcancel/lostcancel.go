// Package lostcancel is a repo-local port of the x/tools lostcancel
// idea (the upstream pass cannot be vendored into this
// zero-dependency module): the cancel function returned by
// context.WithCancel / WithTimeout / WithDeadline must be used.
// Discarding it with _ , or binding it and only ever blank-assigning
// it, leaks the context's timer and child-goroutine bookkeeping.
package lostcancel

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

const doc = "lostcancel: the cancel function of a derived context must be used"

// Analyzer is the lostcancel pass.
var Analyzer = &analysis.Analyzer{
	Name: "lostcancel",
	Doc:  doc,
	Run:  run,
}

var cancelable = map[string]bool{
	"WithCancel":        true,
	"WithTimeout":       true,
	"WithDeadline":      true,
	"WithCancelCause":   true,
	"WithTimeoutCause":  true,
	"WithDeadlineCause": true,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := analysis.PkgFunc(pass.Info, call)
			if pkg != "context" || !cancelable[name] {
				return true
			}
			id, ok := as.Lhs[1].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				pass.Reportf(as.Pos(),
					"the cancel function returned by context.%s is discarded; the derived context leaks", name)
				return true
			}
			obj := objectOf(pass, id)
			if obj == nil {
				return true
			}
			if !usedBeyondBlank(pass, file, id, obj) {
				pass.Reportf(as.Pos(),
					"the cancel function returned by context.%s is never used; call or defer it on every path", name)
			}
			return true
		})
	}
}

func objectOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

// usedBeyondBlank reports whether obj has any use other than its
// defining identifier and RHS appearances in all-blank assignments
// (`_ = cancel` silences the compiler without fixing the leak).
func usedBeyondBlank(pass *analysis.Pass, file *ast.File, def *ast.Ident, obj types.Object) bool {
	blankUses := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
		}
		for _, rhs := range as.Rhs {
			if id, ok := rhs.(*ast.Ident); ok {
				blankUses[id] = true
			}
		}
		return true
	})
	used := false
	ast.Inspect(file, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || blankUses[id] {
			return true
		}
		if pass.Info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
