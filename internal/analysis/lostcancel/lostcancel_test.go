package lostcancel_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/lostcancel"
)

func TestLostcancel(t *testing.T) {
	antest.Run(t, "testdata/src/a", lostcancel.Analyzer)
}
