package a

import (
	"context"
	"time"
)

func discarded(ctx context.Context) context.Context {
	c, _ := context.WithTimeout(ctx, time.Second) // want `cancel function returned by context\.WithTimeout is discarded`
	return c
}

func blanked(ctx context.Context) context.Context {
	c, cancel := context.WithCancel(ctx) // want `cancel function returned by context\.WithCancel is never used`
	_ = cancel
	return c
}

func deferred(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	<-c.Done()
	return c.Err()
}

func calledOnPath(ctx context.Context, fast bool) context.Context {
	c, cancel := context.WithCancel(ctx)
	if fast {
		cancel()
	}
	go func() {
		<-c.Done()
		cancel()
	}()
	return c
}

func passedAlong(ctx context.Context) (context.Context, context.CancelFunc) {
	c, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second))
	return c, cancel
}

// A two-value call that is not a context constructor is ignored.
func unrelated(m map[string]int) int {
	v, ok := m["k"]
	_ = ok
	return v
}
