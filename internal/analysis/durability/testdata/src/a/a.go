package a

import "sync/atomic"

type view struct{ gen int }

// Log stands in for the WAL handle.
type Log struct{ n int }

func (l *Log) Append(b []byte) error          { l.n++; return nil }
func (l *Log) AppendDelete(a, b uint64) error { l.n++; return nil }
func (l *Log) RecordBatch(k int) error        { l.n++; return nil }
func (l *Log) Commit() error                  { return nil }
func (l *Log) Records() int                   { return l.n }

type dataset struct {
	cur atomic.Pointer[view]
	wal *Log
}

func publishBeforeCommit(d *dataset, nv *view) {
	d.wal.Append(nil)
	d.cur.Store(nv) // want `published before WAL Commit`
}

func commitThenPublish(d *dataset, nv *view) {
	d.wal.Append(nil)
	d.wal.Commit()
	d.cur.Store(nv)
}

// A Commit issued before the journal write does not make the later
// journal entries durable.
func staleCommit(d *dataset, nv *view) {
	d.wal.Commit()
	d.wal.RecordBatch(1)
	d.cur.Store(nv) // want `published before WAL Commit`
}

// Commit reached through a same-package helper chain is fine: the
// fsync-policy wrappers are exactly this shape.
func flush(d *dataset)   { syncNow(d) }
func syncNow(d *dataset) { d.wal.Commit() }

func helperCommit(d *dataset, nv *view) {
	d.wal.RecordBatch(3)
	flush(d)
	d.cur.Store(nv)
}

// Publishing with no journal activity in scope is the replay /
// bootstrap path and is allowed.
func replay(d *dataset, nv *view) {
	d.cur.Store(nv)
}

// Zero-argument Record*/Append* calls are stats getters, not journal
// writes; reading them between Commit and publish is fine.
func statsBetween(d *dataset, nv *view) int {
	d.wal.Append(nil)
	d.wal.Commit()
	n := d.wal.Records()
	d.cur.Store(nv)
	return n
}

// Swap and CompareAndSwap are publishes too.
func swapBeforeCommit(d *dataset, nv *view) {
	d.wal.AppendDelete(1, 2)
	d.cur.Swap(nv) // want `published before WAL Commit`
}

func casAfterCommit(d *dataset, old, nv *view) {
	d.wal.AppendDelete(1, 2)
	d.wal.Commit()
	d.cur.CompareAndSwap(old, nv)
}
