// Package durability enforces durable-before-visible ordering on the
// epoch publish path. A mutation that journals to the WAL must
// Commit() the log before the new epoch is Store()d into the
// atomic.Pointer[view]; publishing first means a crash between the
// two loses acknowledged writes. The check is scope-local and ordered:
// for every publish preceded by a journal call in the same function,
// a Commit — direct, or via a same-package helper that transitively
// commits — must appear between the last journal call and the
// publish. Publishes with no preceding journal (replay, bootstrap)
// are exempt.
package durability

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

const doc = "durability: WAL Commit must precede the epoch publish it makes visible"

// Analyzer is the durability pass.
var Analyzer = &analysis.Analyzer{
	Name: "durability",
	Doc:  doc,
	Run:  run,
}

const (
	evJournal = iota
	evCommit
	evPublish
)

type event struct {
	kind int
	pos  token.Pos
}

func run(pass *analysis.Pass) {
	commits := commitHelpers(pass)
	for _, file := range pass.Files {
		for _, sc := range analysis.Scopes(file) {
			var evs []event
			analysis.InspectShallow(sc.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isJournal(pass, call):
					evs = append(evs, event{evJournal, call.Pos()})
				case isCommit(pass, call, commits):
					evs = append(evs, event{evCommit, call.Pos()})
				case isPublish(pass, call):
					evs = append(evs, event{evPublish, call.Pos()})
				}
				return true
			})
			sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
			lastJournal, lastCommit := token.NoPos, token.NoPos
			for _, ev := range evs {
				switch ev.kind {
				case evJournal:
					lastJournal = ev.pos
				case evCommit:
					lastCommit = ev.pos
				case evPublish:
					if lastJournal.IsValid() && (!lastCommit.IsValid() || lastCommit < lastJournal) {
						pass.Reportf(ev.pos,
							"epoch published before WAL Commit in %s: the journaled mutation is not durable when it becomes visible",
							sc.Name())
					}
				}
			}
		}
	}
}

// isJournal matches WAL write calls: methods on the wal Log whose
// names start with Append or Record (Append, AppendBatch,
// AppendDelete, RecordBatch, ...). A journal write always carries a
// payload, so zero-argument calls are excluded — that keeps stats
// getters like Records() from counting as writes.
func isJournal(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	name, onLog := logMethod(pass, call)
	return onLog && (strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Record"))
}

// isCommit matches Commit() on the Log, or a call to a same-package
// function that transitively commits.
func isCommit(pass *analysis.Pass, call *ast.CallExpr, commits map[string]bool) bool {
	if name, onLog := logMethod(pass, call); onLog && name == "Commit" {
		return true
	}
	if f := analysis.CalleeInPkg(pass.Info, pass.Pkg, call); f != nil {
		return commits[f.FullName()]
	}
	return false
}

// isPublish matches Store/Swap/CompareAndSwap on an
// atomic.Pointer[view].
func isPublish(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Store", "Swap", "CompareAndSwap":
		return analysis.IsAtomicPointerTo(pass.Info.TypeOf(sel.X), "view")
	}
	return false
}

// logMethod returns (method name, true) when call is a method call on
// a value of a named type called Log (the WAL log handle).
func logMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	named := analysis.NamedType(pass.Info.TypeOf(sel.X))
	if named == nil || named.Obj().Name() != "Log" {
		return "", false
	}
	return sel.Sel.Name, true
}

// commitHelpers computes the set of same-package functions that
// (transitively, up to depth 4) call Commit on a Log. The mutation
// paths wrap the fsync policy in helpers; calling one of those before
// the publish satisfies the ordering just as a direct Commit does.
func commitHelpers(pass *analysis.Pass) map[string]bool {
	type node struct {
		direct bool
		calls  []string
	}
	nodes := make(map[string]*node)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &node{}
			ast.Inspect(fd.Body, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, onLog := logMethod(pass, call); onLog && name == "Commit" {
					n.direct = true
				}
				if f := analysis.CalleeInPkg(pass.Info, pass.Pkg, call); f != nil {
					n.calls = append(n.calls, f.FullName())
				}
				return true
			})
			nodes[obj.FullName()] = n
		}
	}
	memo := make(map[string]bool)
	var commits func(name string, depth int) bool
	commits = func(name string, depth int) bool {
		if v, ok := memo[name]; ok {
			return v
		}
		n := nodes[name]
		if n == nil || depth > 4 {
			return false
		}
		memo[name] = false // cycle guard
		if n.direct {
			memo[name] = true
			return true
		}
		for _, c := range n.calls {
			if commits(c, depth+1) {
				memo[name] = true
				return true
			}
		}
		return false
	}
	out := make(map[string]bool)
	for name := range nodes {
		if commits(name, 0) {
			out[name] = true
		}
	}
	return out
}
