package durability_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/durability"
)

func TestDurability(t *testing.T) {
	antest.Run(t, "testdata/src/a", durability.Analyzer)
}
