// Package load type-checks Go packages for analysis without any
// dependency outside the standard library. It drives `go list -export
// -deps` to obtain, in one shot, the file lists of the target packages
// and compiled export data for everything they import, then parses the
// targets from source and type-checks them with go/types against that
// export data. The result is the (Fset, Files, Pkg, Info) quadruple an
// analysis.Pass needs — the same information golang.org/x/tools/go/
// packages.Load(NeedSyntax|NeedTypes) would provide.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepOnly    bool
}

// Load type-checks every package matched by patterns, resolved
// relative to dir (the module root or any directory inside it).
// Test files are not loaded: hosvet's invariants target production
// code, and tests legitimately violate several of them (double view
// loads to observe epoch changes, bare stats writes on quiescent
// fixtures).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	sizes := types.SizesFor("gc", runtime.GOARCH)

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		cfg := types.Config{Importer: imp, Sizes: sizes}
		pkg, err := cfg.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: typecheck %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   pkg,
			Info:  info,
		})
	}
	return out, nil
}

// goList runs `go list -export -deps -json` once for the patterns and
// decodes the stream. -deps marks dependency-only packages with
// DepOnly, which is how targets are told apart; -export materialises
// the export data files in the build cache the type checker imports
// from.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Standard,Export,GoFiles,Module,Error,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}
