package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/load"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadMultiPackageModule(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.23\n",
		"root.go": `package demo

import (
	"fmt"

	"demo/sub"
)

func Hello() string { return fmt.Sprintf("%d", sub.Two()) }
`,
		"sub/sub.go": `package sub

func Two() int { return 2 }
`,
		"root_test.go": `package demo

import "testing"

func TestHello(t *testing.T) { _ = Hello() }
`,
	})

	pkgs, err := load.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2 (root + sub)", len(pkgs))
	}
	byPath := map[string]*load.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	root := byPath["demo"]
	if root == nil {
		t.Fatalf("demo package missing: %v", byPath)
	}
	if len(root.Files) != 1 {
		t.Errorf("test files must be excluded: got %d files", len(root.Files))
	}
	if root.Pkg == nil || root.Pkg.Name() != "demo" {
		t.Errorf("typed package missing: %v", root.Pkg)
	}
	// The type info must be populated through export-data imports:
	// Hello's fmt.Sprintf call resolves to the fmt package.
	if root.Info == nil || len(root.Info.Uses) == 0 {
		t.Error("types.Info not populated")
	}
	if byPath["demo/sub"] == nil {
		t.Error("demo/sub not loaded as a target")
	}
}

func TestLoadExplicitPattern(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":     "module demo\n\ngo 1.23\n",
		"root.go":    "package demo\n\nfunc A() {}\n",
		"sub/sub.go": "package sub\n\nfunc B() {}\n",
	})
	pkgs, err := load.Load(dir, "./sub")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "demo/sub" {
		t.Fatalf("pattern ./sub loaded %v", pkgs)
	}
}

func TestLoadErrorNoModule(t *testing.T) {
	_, err := load.Load(t.TempDir())
	if err == nil {
		t.Fatal("loading an empty directory should fail")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error should surface go list output, got: %v", err)
	}
}

func TestLoadErrorBrokenSource(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":  "module demo\n\ngo 1.23\n",
		"bad.go":  "package demo\n\nfunc Broken() { return 3 }\n",
		"good.go": "package demo\n\nfunc Fine() {}\n",
	})
	_, err := load.Load(dir)
	if err == nil {
		t.Fatal("type-broken package should fail to load")
	}
}
