package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

const testSrc = `package m

import (
	"fmt"
	"sync/atomic"
)

type view struct{ n int }
type other struct{ n int }

type D struct {
	cur   atomic.Pointer[view]
	curO  atomic.Pointer[other]
	plain *view
	count int
}

//hos:statslock mu
type S struct{ n int }

//hos:hotpath
func hot() {}

func helper() int { return 1 }

func f(d *D) *view {
	fmt.Println("x")
	helper()
	g := func() int {
		inner := func() int { return 2 }
		return inner()
	}
	_ = g()
	return d.cur.Load()
}
`

func loadTestPkg(t *testing.T) *load.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module m\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "m.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

func findFunc(file *ast.File, name string) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

func TestHasDirective(t *testing.T) {
	p := loadTestPkg(t)
	file := p.Files[0]
	if _, ok := analysis.HasDirective(findFunc(file, "hot").Doc, "hotpath"); !ok {
		t.Error("hotpath directive on hot() not found")
	}
	if _, ok := analysis.HasDirective(findFunc(file, "f").Doc, "hotpath"); ok {
		t.Error("f() has no directive but one was found")
	}
	var found bool
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		if arg, ok := analysis.HasDirective(gd.Doc, "statslock"); ok {
			if arg != "mu" {
				t.Errorf("statslock arg = %q, want mu", arg)
			}
			found = true
		}
	}
	if !found {
		t.Error("statslock directive on S not found")
	}
	if _, ok := analysis.HasDirective(nil, "hotpath"); ok {
		t.Error("nil doc group reported a directive")
	}
}

func structField(t *testing.T, pkg *types.Package, typeName, field string) types.Type {
	t.Helper()
	obj := pkg.Scope().Lookup(typeName)
	st := obj.Type().Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return st.Field(i).Type()
		}
	}
	t.Fatalf("no field %s.%s", typeName, field)
	return nil
}

func TestIsAtomicPointerTo(t *testing.T) {
	p := loadTestPkg(t)
	if !analysis.IsAtomicPointerTo(structField(t, p.Pkg, "D", "cur"), "view") {
		t.Error("cur should be atomic.Pointer[view]")
	}
	if analysis.IsAtomicPointerTo(structField(t, p.Pkg, "D", "curO"), "view") {
		t.Error("curO element is other, not view")
	}
	if analysis.IsAtomicPointerTo(structField(t, p.Pkg, "D", "plain"), "view") {
		t.Error("plain *view is not an atomic pointer")
	}
	if analysis.IsAtomicPointerTo(structField(t, p.Pkg, "D", "count"), "view") {
		t.Error("int is not an atomic pointer")
	}
}

func TestNamedType(t *testing.T) {
	p := loadTestPkg(t)
	if n := analysis.NamedType(structField(t, p.Pkg, "D", "plain")); n == nil || n.Obj().Name() != "view" {
		t.Errorf("NamedType(*view) = %v, want view", n)
	}
	if n := analysis.NamedType(structField(t, p.Pkg, "D", "count")); n != nil {
		t.Errorf("NamedType(int) = %v, want nil", n)
	}
}

func calls(file *ast.File) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(file, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

func TestCallHelpers(t *testing.T) {
	p := loadTestPkg(t)
	var fmtCall, helperCall *ast.CallExpr
	for _, c := range calls(p.Files[0]) {
		if analysis.IsPkgCall(p.Info, c, "fmt", "Println") {
			fmtCall = c
		}
		if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "helper" {
			helperCall = c
		}
	}
	if fmtCall == nil {
		t.Fatal("fmt.Println call not identified")
	}
	if pkg, name := analysis.PkgFunc(p.Info, fmtCall); pkg != "fmt" || name != "Println" {
		t.Errorf("PkgFunc = (%q, %q), want (fmt, Println)", pkg, name)
	}
	if helperCall == nil {
		t.Fatal("helper call not found")
	}
	if pkg, _ := analysis.PkgFunc(p.Info, helperCall); pkg != "" {
		t.Errorf("PkgFunc on plain ident call = %q, want empty", pkg)
	}
	if f := analysis.CalleeInPkg(p.Info, p.Pkg, helperCall); f == nil || f.Name() != "helper" {
		t.Errorf("CalleeInPkg(helper) = %v", f)
	}
	if f := analysis.CalleeInPkg(p.Info, p.Pkg, fmtCall); f != nil {
		t.Errorf("CalleeInPkg(fmt.Println) = %v, want nil (other package)", f)
	}
}

func TestScopesAndInspectShallow(t *testing.T) {
	p := loadTestPkg(t)
	var names []string
	for _, sc := range analysis.Scopes(p.Files[0]) {
		names = append(names, sc.Name())
	}
	joined := strings.Join(names, ",")
	// f contributes its own scope plus two nested literal scopes (the
	// inner literal must be yielded even though it nests in another).
	if !strings.Contains(joined, "f") || strings.Count(joined, "func literal in f") != 2 {
		t.Fatalf("scopes = %v", names)
	}
	// Shallow inspection of f must not see the literals' bodies: the
	// fmt call and the Load are visible, the 'return 2' inside the
	// inner literal is not.
	var sawLoad, sawInnerReturn bool
	for _, sc := range analysis.Scopes(p.Files[0]) {
		if sc.Name() != "f" || sc.Lit != nil {
			continue
		}
		analysis.InspectShallow(sc.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" {
					sawLoad = true
				}
			}
			if r, ok := n.(*ast.ReturnStmt); ok && len(r.Results) == 1 {
				if lit, ok := r.Results[0].(*ast.BasicLit); ok && lit.Value == "2" {
					sawInnerReturn = true
				}
			}
			return true
		})
	}
	if !sawLoad {
		t.Error("shallow walk missed the Load call in f's own body")
	}
	if sawInnerReturn {
		t.Error("shallow walk descended into a nested function literal")
	}
}

func TestRunSortAndString(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "z.go", "package z\n\nfunc a() {}\n\nfunc b() {}\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	backwards := &analysis.Analyzer{
		Name: "backwards",
		Doc:  "reports declarations in reverse order",
		Run: func(pass *analysis.Pass) {
			for i := len(pass.Files[0].Decls) - 1; i >= 0; i-- {
				pass.Reportf(pass.Files[0].Decls[i].Pos(), "decl %d", i)
			}
		},
	}
	diags := analysis.Run([]*analysis.Analyzer{backwards}, fset, []*ast.File{file}, nil, nil)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if diags[0].Pos.Line > diags[1].Pos.Line {
		t.Errorf("diagnostics not sorted by position: %v", diags)
	}
	want := "z.go:3:1: backwards: decl 0"
	if got := diags[0].String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSortOrdersAcrossFilesAndAnalyzers(t *testing.T) {
	mk := func(file string, line, col int, an string) analysis.Diagnostic {
		return analysis.Diagnostic{Pos: token.Position{Filename: file, Line: line, Column: col}, Analyzer: an}
	}
	diags := []analysis.Diagnostic{
		mk("b.go", 1, 1, "x"),
		mk("a.go", 2, 2, "z"),
		mk("a.go", 2, 2, "a"),
		mk("a.go", 2, 1, "x"),
		mk("a.go", 1, 9, "x"),
	}
	analysis.Sort(diags)
	got := []string{}
	for _, d := range diags {
		got = append(got, d.String())
	}
	want := []string{
		"a.go:1:9: x: ",
		"a.go:2:1: x: ",
		"a.go:2:2: a: ",
		"a.go:2:2: z: ",
		"b.go:1:1: x: ",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort order mismatch at %d: got %v", i, got)
		}
	}
}
