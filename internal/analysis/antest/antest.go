// Package antest is the fixture harness for hosvet analyzers, in the
// spirit of golang.org/x/tools/go/analysis/analysistest. A fixture is
// a small standalone module under the analyzer's testdata/ directory;
// lines that must be flagged carry a trailing
//
//	// want `regexp`
//
// comment. Run loads the module, applies the analyzer, and fails the
// test for every unexpected diagnostic and every unmatched want.
package antest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// reporter is the slice of testing.T the harness needs; tests of the
// harness itself substitute a recorder.
type reporter interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Run loads the fixture module rooted at dir and checks the
// analyzer's diagnostics against the module's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	run(t, dir, a)
}

func run(t reporter, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
		return
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
		return
	}
	for _, p := range pkgs {
		diags := analysis.Run([]*analysis.Analyzer{a}, p.Fset, p.Files, p.Pkg, p.Info)
		wants, werr := collectWants(p)
		if werr != nil {
			t.Fatalf("%v", werr)
			return
		}
		for _, d := range diags {
			if !claim(wants, d) {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
			}
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's
// line whose pattern matches its message.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(p *load.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWant(c)
				if err != nil {
					pos := p.Fset.Position(c.Pos())
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, re := range ws {
					pos := p.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

func parseWant(c *ast.Comment) ([]*regexp.Regexp, error) {
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil, nil
	}
	var out []*regexp.Regexp
	for _, q := range wantArgRE.FindAllString(m[1], -1) {
		var pat string
		if strings.HasPrefix(q, "`") {
			pat = strings.Trim(q, "`")
		} else {
			u, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", q, err)
			}
			pat = u
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %s: %v", q, err)
		}
		out = append(out, re)
	}
	return out, nil
}
