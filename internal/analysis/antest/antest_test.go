package antest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// recorder captures harness verdicts instead of failing the test.
type recorder struct {
	errors []string
	fatals []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}

// flagBad reports every function whose name starts with "bad".
var flagBad = &analysis.Analyzer{
	Name: "flagbad",
	Doc:  "test analyzer: flags functions named bad*",
	Run: func(pass *analysis.Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "bad") {
					pass.Reportf(fd.Name.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
	},
}

func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fix\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestMatchedWants(t *testing.T) {
	dir := writeFixture(t, "package fix\n\nfunc badOne() {} // want `function badOne is bad`\n\nfunc fine() {}\n")
	rec := &recorder{}
	run(rec, dir, flagBad)
	if len(rec.errors) != 0 || len(rec.fatals) != 0 {
		t.Fatalf("clean fixture reported: errors=%v fatals=%v", rec.errors, rec.fatals)
	}
}

func TestQuotedWantSyntax(t *testing.T) {
	dir := writeFixture(t, "package fix\n\nfunc badQ() {} // want \"badQ is bad\"\n")
	rec := &recorder{}
	run(rec, dir, flagBad)
	if len(rec.errors) != 0 || len(rec.fatals) != 0 {
		t.Fatalf("quoted want not honored: errors=%v fatals=%v", rec.errors, rec.fatals)
	}
}

func TestUnexpectedDiagnostic(t *testing.T) {
	dir := writeFixture(t, "package fix\n\nfunc badSurprise() {}\n")
	rec := &recorder{}
	run(rec, dir, flagBad)
	if len(rec.errors) != 1 || !strings.Contains(rec.errors[0], "unexpected diagnostic") {
		t.Fatalf("missing unexpected-diagnostic report, got %v", rec.errors)
	}
}

func TestUnmatchedWant(t *testing.T) {
	dir := writeFixture(t, "package fix\n\nfunc fine() {} // want `this never fires`\n")
	rec := &recorder{}
	run(rec, dir, flagBad)
	if len(rec.errors) != 1 || !strings.Contains(rec.errors[0], "no diagnostic matched") {
		t.Fatalf("missing unmatched-want report, got %v", rec.errors)
	}
}

func TestWrongPatternBothWays(t *testing.T) {
	dir := writeFixture(t, "package fix\n\nfunc badTwo() {} // want `completely different`\n")
	rec := &recorder{}
	run(rec, dir, flagBad)
	if len(rec.errors) != 2 {
		t.Fatalf("want both an unexpected diagnostic and an unmatched want, got %v", rec.errors)
	}
}

func TestBadWantRegexp(t *testing.T) {
	dir := writeFixture(t, "package fix\n\nfunc fine() {} // want `([`\n")
	rec := &recorder{}
	run(rec, dir, flagBad)
	if len(rec.fatals) != 1 || !strings.Contains(rec.fatals[0], "bad want regexp") {
		t.Fatalf("bad regexp not fatal, got %v", rec.fatals)
	}
}

func TestLoadFailureIsFatal(t *testing.T) {
	rec := &recorder{}
	run(rec, t.TempDir(), flagBad)
	if len(rec.fatals) != 1 {
		t.Fatalf("empty dir should fail to load, got fatals=%v", rec.fatals)
	}
}
