package a

import "fmt"

type scratch struct {
	buf  []float64
	tick func()
}

// A clean kernel: arithmetic over preallocated slices only.
//
//hos:hotpath
func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

//hos:hotpath
func badMake(n int) []float64 {
	return make([]float64, n) // want `allocates with make`
}

//hos:hotpath
func badNew() *scratch {
	return new(scratch) // want `allocates with new`
}

//hos:hotpath
func badFmt(n int) {
	fmt.Println(n) // want `calls fmt\.Println`
}

//hos:hotpath
func badGo(f func()) {
	go f() // want `starts a goroutine`
}

//hos:hotpath
func badSliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

//hos:hotpath
func badMapLit() map[string]int {
	return map[string]int{} // want `map literal allocates`
}

//hos:hotpath
func badAddrLit() *scratch {
	return &scratch{} // want `address of composite literal allocates`
}

//hos:hotpath
func badFreshAppend(x float64) []float64 {
	return append([]float64{}, x) // want `append to a fresh slice allocates` `slice literal allocates`
}

// Appending into a recycled buffer is the blessed capacity-reuse
// pattern and is not flagged.
//
//hos:hotpath
func reuseAppend(s *scratch, x float64) {
	s.buf = append(s.buf[:0], x)
}

//hos:hotpath
func badEscape(s *scratch) {
	s.tick = func() {} // want `function literal escapes`
}

//hos:hotpath
func badConcat(a, b string) string {
	return a + b // want `non-constant string concatenation`
}

type boxer interface{ m() }
type impl struct{}

func (impl) m() {}

//hos:hotpath
func badBox(v impl) boxer {
	return boxer(v) // want `conversion to interface allocates`
}

// Warm-up guards: growth happens once per scratch lifetime, so the
// nil / cap forms are exempt.
//
//hos:hotpath
func warm(s *scratch, n int) {
	if s.buf == nil {
		s.buf = make([]float64, n)
	}
	if cap(s.buf) < n {
		s.buf = make([]float64, 0, n)
	}
	s.buf = s.buf[:n]
}

// Cold guard: an early-exit error path may allocate; it is never on
// the steady-state loop.
//
//hos:hotpath
func guarded(a []float64) error {
	if len(a) == 0 {
		return fmt.Errorf("empty input")
	}
	return nil
}

// A literal bound to a local or passed to an ordinary call does not
// escape: the visitor-callback pattern stays legal.
//
//hos:hotpath
func visitor(a []float64) float64 {
	total := 0.0
	add := func(v float64) { total += v }
	each(a, add)
	each(a, func(v float64) { total += v })
	return total
}

func each(a []float64, f func(float64)) {
	for _, v := range a {
		f(v)
	}
}

// Unannotated helpers may allocate freely.
func coldAlloc(n int) []float64 {
	return make([]float64, n)
}

type index struct{}

// KNN is a benchmarked entry-point name: the annotation is required.
func (ix *index) KNN(q []float64, k int) int { // want `missing the //hos:hotpath annotation`
	return k
}

type miner struct{}

//hos:hotpath
func (m *miner) QueryWith(q []float64) float64 {
	return dist(q, q)
}
