// Package hotpath keeps the benchmarked query paths allocation-free.
// Functions annotated with a
//
//	//hos:hotpath
//
// doc directive must not contain constructs that allocate in steady
// state: make/new, slice and map literals, &struct{} literals,
// fmt calls, goroutine launches, appends to fresh slices, escaping
// function literals, explicit conversions to interface types, and
// non-constant string concatenation.
//
// Two guard shapes are exempt, because the zero-alloc contract is
// steady-state, not first-call: a warm-up guard (an if whose
// condition nil-checks or cap/len-compares, under which scratch
// buffers are grown once) and a cold guard (an if body that ends in
// return or panic — an early-exit error path never taken in the
// benchmark loop).
//
// A meta-check defends the annotation itself: methods named after the
// benchmarked zero-alloc entry points (QueryWith, QueryBatch, KNN)
// must carry the directive, so the contract cannot silently rot when
// files are refactored.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

const doc = "hotpath: //hos:hotpath functions must not contain allocating constructs"

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  doc,
	Run:  run,
}

// hotRoots are the method names of the benchmarked zero-alloc entry
// points; a method with one of these names and no annotation is a
// contract drift.
var hotRoots = map[string]bool{
	"QueryWith":  true,
	"QueryBatch": true,
	"KNN":        true,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, annotated := analysis.HasDirective(fd.Doc, "hotpath"); !annotated {
				if hotRoots[fd.Name.Name] && fd.Recv != nil {
					pass.Reportf(fd.Name.Pos(),
						"benchmarked zero-alloc entry point %s is missing the //hos:hotpath annotation",
						fd.Name.Name)
				}
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

type span struct{ lo, hi token.Pos }

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	exempt := exemptSpans(pass, fd.Body)
	inExempt := func(p token.Pos) bool {
		for _, s := range exempt {
			if s.lo <= p && p < s.hi {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !inExempt(pos) {
			args = append(args, fd.Name.Name)
			pass.Reportf(pos, format+" in //hos:hotpath function %s", args...)
		}
	}

	parents := parentMap(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "starts a goroutine")
		case *ast.CallExpr:
			checkCall(pass, n, report)
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			switch types.Unalias(t).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
				return false
			case *types.Map:
				report(n.Pos(), "map literal allocates")
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal allocates")
					return false
				}
			}
		case *ast.FuncLit:
			if escapes(parents, n) {
				report(n.Pos(), "function literal escapes (closure allocates)")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pass, n) {
				report(n.Pos(), "non-constant string concatenation allocates")
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(call.Pos(), "allocates with "+b.Name())
			case "append":
				if len(call.Args) > 0 && isFreshSlice(call.Args[0]) {
					report(call.Pos(), "append to a fresh slice allocates")
				}
			}
			return
		}
	}
	if pkg, name := analysis.PkgFunc(pass.Info, call); pkg == "fmt" {
		report(call.Pos(), "calls fmt."+name+", which allocates")
		return
	}
	// Explicit conversion of a concrete value to an interface type
	// boxes the value.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type.Underlying()) {
			if at := pass.Info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at.Underlying()) {
				report(call.Pos(), "conversion to interface allocates")
			}
		}
	}
}

// isFreshSlice reports whether the append base is a brand-new slice
// (nil literal or a composite literal) — growth is then guaranteed,
// not amortized over a recycled buffer.
func isFreshSlice(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	}
	return false
}

func isNonConstString(pass *analysis.Pass, b *ast.BinaryExpr) bool {
	tv, ok := pass.Info.Types[b]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	return tv.Value == nil
}

// escapes decides whether a function literal outlives the statement
// that creates it. Allowed: binding to a local variable and passing
// directly as an argument to an ordinary call (the callee runs it
// synchronously — the EachUnknownInLayer visitor pattern), and
// immediately-invoked literals. Everything else — stored into
// fields/slices/maps, returned, deferred, passed to builtins like
// append, launched with go — escapes.
func escapes(parents map[ast.Node]ast.Node, lit *ast.FuncLit) bool {
	switch p := parents[lit].(type) {
	case *ast.CallExpr:
		if p.Fun == lit {
			// Immediately invoked: gostmt/defer on it is flagged at
			// the statement level already.
			gp := parents[p]
			_, isGo := gp.(*ast.GoStmt)
			_, isDefer := gp.(*ast.DeferStmt)
			return isGo || isDefer
		}
		// Argument position: fine for ordinary calls, an escape for
		// builtins (append, ...).
		if id, ok := p.Fun.(*ast.Ident); ok && id.Obj == nil && isBuiltinName(id.Name) {
			return true
		}
		return false
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs == lit && i < len(p.Lhs) {
				if _, ok := p.Lhs[i].(*ast.Ident); ok {
					return false
				}
			}
		}
		return true
	}
	return true
}

func isBuiltinName(name string) bool {
	switch name {
	case "append", "copy", "delete", "print", "println":
		return true
	}
	return false
}

// parentMap records each node's immediate parent.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// exemptSpans collects the body ranges of warm-up and cold guards.
func exemptSpans(pass *analysis.Pass, body *ast.BlockStmt) []span {
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if isColdGuard(ifs) || isWarmupGuard(pass, ifs.Cond) {
			spans = append(spans, span{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return spans
}

// isColdGuard matches early-exit bodies: the last statement returns
// or panics, so the block is off the steady-state loop.
func isColdGuard(ifs *ast.IfStmt) bool {
	if len(ifs.Body.List) == 0 {
		return false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// isWarmupGuard matches scratch-growth conditions: nil checks and
// cap/len comparisons. Allocation under such a guard happens once per
// scratch lifetime, not per query.
func isWarmupGuard(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.EQL, token.NEQ:
			if isNilIdent(b.X) || isNilIdent(b.Y) {
				found = true
			}
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if isCapLenCall(b.X) || isCapLenCall(b.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isCapLenCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && (id.Name == "cap" || id.Name == "len")
}
