// Package metrics scores predicted outlying-subspace sets against
// ground truth for the effectiveness experiments (T2), and provides
// small numeric summaries shared by the experiment harness.
package metrics

import (
	"fmt"

	"repro/internal/subspace"
)

// MatchMode defines when a predicted subspace counts as matching a
// ground-truth subspace.
type MatchMode uint8

const (
	// MatchExact requires set equality.
	MatchExact MatchMode = iota
	// MatchSubset counts a prediction as hitting a truth subspace when
	// the prediction is a (non-empty) subset of it. This is the
	// appropriate notion for *minimal* outlying subspaces: if the
	// planted deviation spans {1,3}, detecting {1} alone already
	// pinpoints a genuine deviating axis (OD monotonicity then implies
	// {1,3} is outlying too).
	MatchSubset
	// MatchOverlap counts any shared dimension as a hit — the most
	// lenient notion, used to compare against the evolutionary
	// baseline whose grid cells rarely reproduce exact dimension sets.
	MatchOverlap
)

// String names the mode.
func (m MatchMode) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchSubset:
		return "subset"
	case MatchOverlap:
		return "overlap"
	default:
		return fmt.Sprintf("MatchMode(%d)", uint8(m))
	}
}

// PRF bundles precision, recall and F1.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	// TruePositives counts predictions that matched some truth
	// subspace; Hits counts truth subspaces matched by some
	// prediction (they differ when several predictions hit one truth).
	TruePositives int
	Hits          int
}

// Score compares predicted subspaces against truth under the given
// mode. Empty predictions with non-empty truth give zero recall;
// empty truth with non-empty predictions gives zero precision; both
// empty scores 1/1/1 (nothing to find, nothing found).
func Score(predicted, truth []subspace.Mask, mode MatchMode) PRF {
	if len(predicted) == 0 && len(truth) == 0 {
		return PRF{Precision: 1, Recall: 1, F1: 1}
	}
	var tp int
	for _, p := range predicted {
		if matchesAny(p, truth, mode) {
			tp++
		}
	}
	var hits int
	for _, tr := range truth {
		if coversAny(tr, predicted, mode) {
			hits++
		}
	}
	prf := PRF{TruePositives: tp, Hits: hits}
	if len(predicted) > 0 {
		prf.Precision = float64(tp) / float64(len(predicted))
	}
	if len(truth) > 0 {
		prf.Recall = float64(hits) / float64(len(truth))
	} else {
		prf.Recall = 1
	}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf
}

// matchesAny reports whether prediction p matches any truth subspace.
func matchesAny(p subspace.Mask, truth []subspace.Mask, mode MatchMode) bool {
	for _, tr := range truth {
		if matches(p, tr, mode) {
			return true
		}
	}
	return false
}

// coversAny reports whether truth subspace tr is matched by any
// prediction.
func coversAny(tr subspace.Mask, predicted []subspace.Mask, mode MatchMode) bool {
	for _, p := range predicted {
		if matches(p, tr, mode) {
			return true
		}
	}
	return false
}

// matches applies the mode with p as prediction and tr as truth.
func matches(p, tr subspace.Mask, mode MatchMode) bool {
	switch mode {
	case MatchExact:
		return p == tr
	case MatchSubset:
		return !p.IsEmpty() && p.SubsetOf(tr)
	case MatchOverlap:
		return !p.Intersect(tr).IsEmpty()
	default:
		panic("metrics: unknown match mode")
	}
}

// Jaccard returns |a ∩ b| / |a ∪ b| over subspace sets (1 when both
// empty).
func Jaccard(a, b []subspace.Mask) float64 {
	setA := make(map[subspace.Mask]bool, len(a))
	for _, s := range a {
		setA[s] = true
	}
	setB := make(map[subspace.Mask]bool, len(b))
	for _, s := range b {
		setB[s] = true
	}
	var inter int
	for s := range setA {
		if setB[s] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanPRF averages component-wise.
func MeanPRF(prfs []PRF) PRF {
	if len(prfs) == 0 {
		return PRF{}
	}
	var out PRF
	for _, p := range prfs {
		out.Precision += p.Precision
		out.Recall += p.Recall
		out.F1 += p.F1
		out.TruePositives += p.TruePositives
		out.Hits += p.Hits
	}
	n := float64(len(prfs))
	out.Precision /= n
	out.Recall /= n
	out.F1 /= n
	return out
}
