package metrics

import (
	"math"
	"testing"

	"repro/internal/subspace"
)

func TestScoreBothEmpty(t *testing.T) {
	s := Score(nil, nil, MatchExact)
	if s.Precision != 1 || s.Recall != 1 || s.F1 != 1 {
		t.Fatalf("both empty = %+v", s)
	}
}

func TestScoreEmptyPrediction(t *testing.T) {
	truth := []subspace.Mask{subspace.New(0)}
	s := Score(nil, truth, MatchExact)
	if s.Recall != 0 || s.Hits != 0 {
		t.Fatalf("empty prediction = %+v", s)
	}
}

func TestScoreEmptyTruth(t *testing.T) {
	pred := []subspace.Mask{subspace.New(0)}
	s := Score(pred, nil, MatchExact)
	if s.Precision != 0 || s.Recall != 1 {
		t.Fatalf("empty truth = %+v", s)
	}
}

func TestScoreExact(t *testing.T) {
	pred := []subspace.Mask{subspace.New(0, 1), subspace.New(2)}
	truth := []subspace.Mask{subspace.New(0, 1), subspace.New(3)}
	s := Score(pred, truth, MatchExact)
	if s.TruePositives != 1 || s.Hits != 1 {
		t.Fatalf("exact = %+v", s)
	}
	if math.Abs(s.Precision-0.5) > 1e-12 || math.Abs(s.Recall-0.5) > 1e-12 {
		t.Fatalf("P/R = %v/%v", s.Precision, s.Recall)
	}
	if math.Abs(s.F1-0.5) > 1e-12 {
		t.Fatalf("F1 = %v", s.F1)
	}
}

func TestScoreSubset(t *testing.T) {
	// Prediction {1} is a subset of planted {1,3}: hit under
	// MatchSubset, miss under MatchExact.
	pred := []subspace.Mask{subspace.New(1)}
	truth := []subspace.Mask{subspace.New(1, 3)}
	if s := Score(pred, truth, MatchExact); s.Recall != 0 {
		t.Fatalf("exact: %+v", s)
	}
	if s := Score(pred, truth, MatchSubset); s.Recall != 1 || s.Precision != 1 {
		t.Fatalf("subset: %+v", s)
	}
	// Superset prediction {1,2,3} is NOT a subset match.
	sup := []subspace.Mask{subspace.New(1, 2, 3)}
	if s := Score(sup, truth, MatchSubset); s.Precision != 0 {
		t.Fatalf("superset under subset mode: %+v", s)
	}
}

func TestScoreOverlap(t *testing.T) {
	pred := []subspace.Mask{subspace.New(1, 2)}
	truth := []subspace.Mask{subspace.New(2, 3)}
	if s := Score(pred, truth, MatchOverlap); s.Recall != 1 || s.Precision != 1 {
		t.Fatalf("overlap: %+v", s)
	}
	disjoint := []subspace.Mask{subspace.New(0)}
	if s := Score(disjoint, truth, MatchOverlap); s.Recall != 0 {
		t.Fatalf("disjoint overlap: %+v", s)
	}
}

func TestScoreMultipleHitsOneTruth(t *testing.T) {
	// Two predictions hitting the same truth: TP=2, Hits=1 →
	// precision 1, recall 1/2 (second truth unmatched).
	pred := []subspace.Mask{subspace.New(0), subspace.New(1)}
	truth := []subspace.Mask{subspace.New(0, 1), subspace.New(2, 3)}
	s := Score(pred, truth, MatchSubset)
	if s.TruePositives != 2 || s.Hits != 1 {
		t.Fatalf("%+v", s)
	}
	if s.Precision != 1 || s.Recall != 0.5 {
		t.Fatalf("P/R = %v/%v", s.Precision, s.Recall)
	}
}

func TestMatchModeString(t *testing.T) {
	for _, m := range []MatchMode{MatchExact, MatchSubset, MatchOverlap, MatchMode(7)} {
		if m.String() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestJaccard(t *testing.T) {
	a := []subspace.Mask{subspace.New(0), subspace.New(1)}
	b := []subspace.Mask{subspace.New(1), subspace.New(2)}
	if got := Jaccard(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("jaccard = %v", got)
	}
	if Jaccard(nil, nil) != 1 {
		t.Fatal("both empty jaccard")
	}
	if Jaccard(a, nil) != 0 {
		t.Fatal("one empty jaccard")
	}
	if Jaccard(a, a) != 1 {
		t.Fatal("self jaccard")
	}
	// duplicates collapse
	dup := []subspace.Mask{subspace.New(0), subspace.New(0), subspace.New(1)}
	if Jaccard(dup, a) != 1 {
		t.Fatal("duplicate handling")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
}

func TestMeanPRF(t *testing.T) {
	prfs := []PRF{
		{Precision: 1, Recall: 0.5, F1: 2.0 / 3},
		{Precision: 0, Recall: 1, F1: 0},
	}
	m := MeanPRF(prfs)
	if math.Abs(m.Precision-0.5) > 1e-12 || math.Abs(m.Recall-0.75) > 1e-12 {
		t.Fatalf("mean PRF = %+v", m)
	}
	if MeanPRF(nil) != (PRF{}) {
		t.Fatal("empty MeanPRF")
	}
}
