package hosminer_test

import (
	"fmt"

	hosminer "repro"
)

// ExampleNew demonstrates the core loop: build a miner, query a
// planted outlier, read its minimal outlying subspaces.
func ExampleNew() {
	ds, truth, _ := hosminer.GenerateSynthetic(hosminer.SyntheticConfig{
		N: 500, D: 6, NumOutliers: 1, OutlierSubspaceDim: 2, Seed: 3,
	})
	m, _ := hosminer.New(ds, hosminer.Config{K: 5, TQuantile: 0.95, Seed: 3})
	res, _ := m.OutlyingSubspacesOfPoint(truth.Outliers[0].Index)

	fmt.Println("planted:", truth.Outliers[0].Subspace)
	fmt.Println("outlier anywhere:", res.IsOutlierAnywhere)
	for _, s := range res.Minimal {
		fmt.Println("minimal:", s)
	}
	// Output:
	// planted: [1,4]
	// outlier anywhere: true
	// minimal: [1]
	// minimal: [4]
}

// ExampleMinimalSubspaces reproduces the paper's §3.4 worked example
// (shifted to 0-based dimensions): only the lowest-dimensional
// outlying subspaces survive the refinement filter.
func ExampleMinimalSubspaces() {
	outlying := []hosminer.Subspace{
		hosminer.NewSubspace(0, 2),
		hosminer.NewSubspace(1, 3),
		hosminer.NewSubspace(0, 1, 2),
		hosminer.NewSubspace(0, 1, 3),
		hosminer.NewSubspace(0, 2, 3),
		hosminer.NewSubspace(1, 2, 3),
		hosminer.NewSubspace(0, 1, 2, 3),
	}
	for _, s := range hosminer.MinimalSubspaces(outlying) {
		fmt.Println(s)
	}
	// Output:
	// [0,2]
	// [1,3]
}

// ExampleScore shows effectiveness scoring of predictions against a
// planted ground truth under subset matching.
func ExampleScore() {
	predicted := []hosminer.Subspace{hosminer.NewSubspace(1)}
	truth := []hosminer.Subspace{hosminer.NewSubspace(1, 3)}
	prf := hosminer.Score(predicted, truth, hosminer.MatchSubset)
	fmt.Printf("precision=%.1f recall=%.1f\n", prf.Precision, prf.Recall)
	// Output:
	// precision=1.0 recall=1.0
}

// ExampleParseSubspace round-trips the paper-style rendering.
func ExampleParseSubspace() {
	s, _ := hosminer.ParseSubspace("[1,3]")
	fmt.Println(s.Card(), s.Contains(3), s)
	// Output:
	// 2 true [1,3]
}
