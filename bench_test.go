// Benchmarks for every experiment in DESIGN.md §3 plus micro-benches
// of the performance-critical primitives. Each BenchmarkT*/F* bench
// regenerates the corresponding experiment table (Quick scale by
// default; set HOSBENCH_SCALE=full for DESIGN.md parameters) — run
// with -v to see the tables. cmd/hosbench produces the same tables
// standalone.
package hosminer_test

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/subspace"
	"repro/internal/vector"
	"repro/internal/xtree"
)

func benchScale() experiments.Scale {
	if os.Getenv("HOSBENCH_SCALE") == "full" {
		return experiments.Full
	}
	return experiments.Quick
}

// benchExperiment regenerates one experiment table per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner := experiments.NewRunner(benchScale(), 1)
	var rendered string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := runner.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				b.Fatal(err)
			}
			rendered = buf.String()
		}
	}
	b.StopTimer()
	b.Log("\n" + rendered)
}

// One bench per table/figure (DESIGN.md §3 experiment index).

func BenchmarkT1SavingFactors(b *testing.B)      { benchExperiment(b, "T1") }
func BenchmarkF1RuntimeVsDim(b *testing.B)       { benchExperiment(b, "F1") }
func BenchmarkF2RuntimeVsN(b *testing.B)         { benchExperiment(b, "F2") }
func BenchmarkF3PruningPower(b *testing.B)       { benchExperiment(b, "F3") }
func BenchmarkF4SampleSize(b *testing.B)         { benchExperiment(b, "F4") }
func BenchmarkF5Threshold(b *testing.B)          { benchExperiment(b, "F5") }
func BenchmarkF6K(b *testing.B)                  { benchExperiment(b, "F6") }
func BenchmarkT2Effectiveness(b *testing.B)      { benchExperiment(b, "T2") }
func BenchmarkF7VsEvolutionary(b *testing.B)     { benchExperiment(b, "F7") }
func BenchmarkT3XTreeKNN(b *testing.B)           { benchExperiment(b, "T3") }
func BenchmarkT4FilterReduction(b *testing.B)    { benchExperiment(b, "T4") }
func BenchmarkF8OrderingAblation(b *testing.B)   { benchExperiment(b, "F8") }
func BenchmarkT5XTreeSplitAblation(b *testing.B) { benchExperiment(b, "T5") }
func BenchmarkF9MetricSweep(b *testing.B)        { benchExperiment(b, "F9") }

// --- micro-benches ---------------------------------------------------

func benchDataset(b *testing.B, n, d int) *vector.Dataset {
	b.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: n, D: d, NumOutliers: 3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkLinearKNN(b *testing.B) {
	ds := benchDataset(b, 4000, 10)
	ls, err := knn.NewLinear(ds, vector.L2)
	if err != nil {
		b.Fatal(err)
	}
	s := subspace.Full(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls.KNN(ds.Point(i%ds.N()), s, 5, i%ds.N())
	}
}

func BenchmarkXTreeKNN(b *testing.B) {
	ds := benchDataset(b, 4000, 10)
	tree, err := xtree.Build(ds, vector.L2, xtree.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	xs := xtree.NewSearcher(tree)
	s := subspace.Full(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs.KNN(ds.Point(i%ds.N()), s, 5, i%ds.N())
	}
}

func BenchmarkXTreeSubspaceKNN(b *testing.B) {
	ds := benchDataset(b, 4000, 10)
	tree, err := xtree.Build(ds, vector.L2, xtree.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	xs := xtree.NewSearcher(tree)
	s := subspace.New(1, 4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs.KNN(ds.Point(i%ds.N()), s, 5, i%ds.N())
	}
}

func BenchmarkXTreeBuild(b *testing.B) {
	ds := benchDataset(b, 2000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xtree.Build(ds, vector.L2, xtree.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkODEvaluation(b *testing.B) {
	ds := benchDataset(b, 2000, 10)
	ls, _ := knn.NewLinear(ds, vector.L2)
	eval, err := od.NewEvaluator(ds, ls, vector.L2, 5, od.NormNone)
	if err != nil {
		b.Fatal(err)
	}
	s := subspace.New(0, 3, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.ODOfPoint(i%ds.N(), s)
	}
}

func benchSearchPolicy(b *testing.B, policy core.Policy) {
	ds := benchDataset(b, 800, 10)
	ls, _ := knn.NewLinear(ds, vector.L2)
	eval, err := od.NewEvaluator(ds, ls, vector.L2, 5, od.NormNone)
	if err != nil {
		b.Fatal(err)
	}
	ods := eval.FullSpaceODs()
	T, err := vector.Quantile(ods, 0.95)
	if err != nil {
		b.Fatal(err)
	}
	priors := core.UniformPriors(10)
	rng := experimentsRng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := eval.NewQueryForPoint(i % ds.N())
		if _, err := core.Search(q, 10, T, priors, policy, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchTSF(b *testing.B)      { benchSearchPolicy(b, core.PolicyTSF) }
func BenchmarkSearchBottomUp(b *testing.B) { benchSearchPolicy(b, core.PolicyBottomUp) }
func BenchmarkSearchTopDown(b *testing.B)  { benchSearchPolicy(b, core.PolicyTopDown) }

// --- batch engine ----------------------------------------------------
//
// BenchmarkQueryBatch vs BenchmarkQueryBatchSequentialBaseline run the
// SAME 64-query workload (hot-key traffic: 64 queries over 16 distinct
// rows of the default synthetic dataset, the shape multi-user serving
// produces) through the batch engine and through N sequential single
// queries. The batch engine's shared per-batch OD cache answers
// repeated (point, subspace) probes from earlier items' work, which is
// where the speedup comes from even on one core; on multi-core
// machines the worker fan-out multiplies it. Measured numbers live in
// DESIGN.md §4.5.

func batchBenchMiner(b *testing.B) *core.Miner {
	b.Helper()
	ds := benchDataset(b, 1000, 8)
	m, err := core.NewMiner(ds, core.Config{K: 5, TQuantile: 0.95, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		b.Fatal(err)
	}
	return m
}

// batchBenchQueries is the shared 64-item hot-key workload.
func batchBenchQueries() []core.BatchQuery {
	rng := rand.New(rand.NewSource(7))
	qs := make([]core.BatchQuery, 64)
	for i := range qs {
		qs[i] = core.BatchIndex(rng.Intn(16))
	}
	return qs
}

func BenchmarkQueryBatch(b *testing.B) {
	m := batchBenchMiner(b)
	qs := batchBenchQueries()
	pool := m.NewEvaluatorPool()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.QueryBatch(context.Background(), qs, core.BatchOptions{Pool: pool})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatalf("%d items failed", res.Failed)
		}
	}
}

func BenchmarkQueryBatchSequentialBaseline(b *testing.B) {
	m := batchBenchMiner(b)
	qs := batchBenchQueries()
	eval, err := m.NewWorkerEvaluator()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			row, _ := q.Row()
			if _, err := m.QueryPointWith(eval, row); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMinimalFilter(b *testing.B) {
	// A realistic post-search outlying set: all supersets of two
	// planted 2-dim subspaces in d=14.
	d := 14
	outlying := core.ExpandMinimal([]subspace.Mask{
		subspace.New(1, 4), subspace.New(7, 9),
	}, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MinimalSubspaces(outlying)
	}
}

func BenchmarkLatticePropagation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := latticeFresh(16)
		if err != nil {
			b.Fatal(err)
		}
		tr.MarkOutlier(subspace.New(2), true)
		tr.MarkNonOutlier(subspace.Full(16).Drop(2), true)
	}
}
