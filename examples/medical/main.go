// Medical anomaly triage — the paper's second motivating scenario
// (§1): "it is useful for the Doctors to identify from voluminous
// medical data the subspaces in which a particular patient is found
// abnormal and therefore a corresponding medical treatment can be
// provided in a timely manner."
//
// A synthetic lab-results table stands in for the clinical data; a
// few patients are planted with abnormal lab subsets. The example
// also contrasts HOS-Miner with a classical full-space detector to
// show why the subspace answer is the actionable one.
//
// Run: go run ./examples/medical
//
// To serve the same queries to many clients over HTTP — with a
// result cache and live stats — use the hosserve service instead:
// go run ./cmd/hosserve (see README.md).
package main

import (
	"fmt"
	"log"
	"strings"

	hosminer "repro"
)

func main() {
	ds, truth, err := hosminer.GenerateMedical(600, 5, 23)
	if err != nil {
		log.Fatal(err)
	}
	norm, _ := ds.MinMaxNormalize()

	m, err := hosminer.New(norm, hosminer.Config{
		K: 6, TQuantile: 0.97, SampleSize: 16, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cohort: %d patients, %d lab attributes (%s)\n\n",
		ds.N(), ds.Dim(), strings.Join(ds.Columns(), ", "))

	flagged := 0
	for _, patient := range truth.Outliers {
		res, err := m.OutlyingSubspacesOfPoint(patient.Index)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("patient #%d — planted abnormality in %s\n",
			patient.Index, labNames(ds, patient.Subspace))
		if !res.IsOutlierAnywhere {
			fmt.Println("  within normal variation at this threshold")
			fmt.Println()
			continue
		}
		flagged++
		fmt.Println("  abnormal lab combinations (minimal):")
		for i, s := range res.Minimal {
			if i >= 4 {
				fmt.Printf("    ... and %d more\n", len(res.Minimal)-4)
				break
			}
			fmt.Printf("    %s\n", labNames(ds, s))
		}
		// Show the monotonicity story: the full panel is abnormal too,
		// but that answer alone would not direct treatment.
		full := hosminer.FullSubspace(ds.Dim())
		inFull := false
		for _, s := range res.Outlying {
			if s == full {
				inFull = true
				break
			}
		}
		fmt.Printf("  whole-panel view abnormal: %v — but the minimal subspaces name the labs to treat\n\n", inFull)
	}
	fmt.Printf("%d of %d planted patients flagged\n", flagged, len(truth.Outliers))
}

func labNames(ds *hosminer.Dataset, s hosminer.Subspace) string {
	var names []string
	s.EachDim(func(dim int) { names = append(names, ds.ColumnName(dim)) })
	return strings.Join(names, " + ")
}
