// Quickstart: generate a synthetic dataset with planted subspace
// outliers, build a Miner, and recover each outlier's outlying
// subspaces — the library's core loop in ~40 lines.
//
// Run: go run ./examples/quickstart
//
// To serve the same queries to many clients over HTTP — with a
// result cache and live stats — use the hosserve service instead:
// go run ./cmd/hosserve (see README.md).
package main

import (
	"fmt"
	"log"

	hosminer "repro"
)

func main() {
	// 1. A clustered dataset: 1000 points in 8 dimensions, with 3
	// planted outliers that each deviate in a known 2-dim subspace.
	ds, truth, err := hosminer.GenerateSynthetic(hosminer.SyntheticConfig{
		N: 1000, D: 8, NumOutliers: 3, OutlierSubspaceDim: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A miner: OD over k=5 neighbours, threshold at the 95th
	// percentile of full-space ODs, 20-point learning sample.
	m, err := hosminer.New(ds, hosminer.Config{
		K: 5, TQuantile: 0.95, SampleSize: 20, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d points x %d dims, threshold T = %.3f\n\n",
		ds.N(), ds.Dim(), m.Threshold())

	// 3. Query each planted outlier: in which subspaces is it an
	// outlier?
	for _, planted := range truth.Outliers {
		res, err := m.OutlyingSubspacesOfPoint(planted.Index)
		if err != nil {
			log.Fatal(err)
		}
		score := hosminer.Score(res.Minimal, []hosminer.Subspace{planted.Subspace}, hosminer.MatchSubset)
		fmt.Printf("point %d (planted in %v):\n", planted.Index, planted.Subspace)
		fmt.Printf("  minimal outlying subspaces: %v\n", res.Minimal)
		fmt.Printf("  outlying in %d of %d subspaces total\n", len(res.Outlying), res.Counters.Total)
		fmt.Printf("  search: %d OD evaluations (pruning settled the other %d)\n",
			res.Counters.Evaluations, res.Counters.ImpliedUp+res.Counters.ImpliedDown)
		fmt.Printf("  recall vs ground truth (subset match): %.0f%%\n\n", score.Recall*100)
	}

	// 4. An ordinary point, for contrast.
	res, err := m.OutlyingSubspacesOfPoint(500)
	if err != nil {
		log.Fatal(err)
	}
	if res.IsOutlierAnywhere {
		fmt.Printf("point 500: outlier in %d subspaces (minimal: %v)\n", len(res.Outlying), res.Minimal)
	} else {
		fmt.Println("point 500: not an outlier in any subspace")
	}
}
