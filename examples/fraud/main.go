// Credit-card fraud triage — the very first application the paper's
// introduction names ("detection of credit card frauds"). A stream
// of transaction feature vectors is mined two ways:
//
//  1. batch: ScanAll sweeps the history and surfaces the accounts
//     whose behaviour is outlying in *some* feature subspace, ranked
//     by severity;
//  2. online: each incoming transaction is checked as an external
//     query point — the minimal outlying subspaces name the feature
//     combination that makes it suspicious (amount alone? amount ×
//     hour? merchant-distance × frequency?), which is what a fraud
//     analyst acts on.
//
// Run: go run ./examples/fraud
//
// The online mode here is exactly what cmd/hosserve productionises:
// POST each transaction vector to /query on a long-lived service
// with a result cache and live stats (see README.md).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	hosminer "repro"
)

func main() {
	ds := transactionHistory(800, 5)
	m, err := hosminer.New(ds, hosminer.Config{
		K: 6, TQuantile: 0.985, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d transactions x %d features (%s); T = %.3f\n\n",
		ds.N(), ds.Dim(), strings.Join(ds.Columns(), ", "), m.Threshold())

	// --- 1. batch sweep over the history ---------------------------
	hits, err := m.ScanAll(hosminer.ScanOptions{SortBySeverity: true, MaxResults: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch sweep: %d suspicious transactions, top %d:\n", len(hits), len(hits))
	for _, h := range hits {
		fmt.Printf("  txn #%-4d severity %.2f — suspicious feature combos: %s\n",
			h.Index, h.FullSpaceOD, describeAll(ds, h.Minimal, 3))
	}

	// --- 2. online checks of incoming transactions -----------------
	fmt.Println("\nonline checks:")
	incoming := map[string][]float64{
		"ordinary purchase":       {42, 14, 2.1, 3, 0.4},
		"huge amount, odd hour":   {2600, 3.5, 2.0, 3, 0.5},
		"far-away burst of spend": {180, 15, 310, 14, 0.5},
	}
	for _, name := range []string{"ordinary purchase", "huge amount, odd hour", "far-away burst of spend"} {
		res, err := m.OutlyingSubspaces(incoming[name])
		if err != nil {
			log.Fatal(err)
		}
		if !res.IsOutlierAnywhere {
			fmt.Printf("  %-24s -> clean\n", name)
			continue
		}
		fmt.Printf("  %-24s -> FLAG: %s\n", name, describeAll(ds, res.Minimal, 3))
	}
}

// transactionHistory synthesises plausible card activity: amount,
// hour-of-day, merchant distance (km), txns-per-day, online ratio.
func transactionHistory(n, d int) *hosminer.Dataset {
	rng := rand.New(rand.NewSource(99))
	rows := make([][]float64, n)
	for i := range rows {
		amount := 15 + rng.ExpFloat64()*45 // most purchases small
		hour := 9 + rng.NormFloat64()*3.5  // daytime activity
		if hour < 0 {
			hour += 24
		}
		dist := rng.ExpFloat64() * 4 // near home
		perDay := 1 + rng.ExpFloat64()*2.5
		online := rng.Float64() * 0.8
		rows[i] = []float64{amount, hour, dist, perDay, online}
	}
	ds, err := hosminer.FromRows(rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SetColumns([]string{"amount", "hour", "distanceKm", "txnsPerDay", "onlineRatio"}); err != nil {
		log.Fatal(err)
	}
	return ds
}

func describeAll(ds *hosminer.Dataset, subs []hosminer.Subspace, max int) string {
	var parts []string
	for i, s := range subs {
		if i >= max {
			parts = append(parts, fmt.Sprintf("+%d more", len(subs)-max))
			break
		}
		var names []string
		s.EachDim(func(dim int) { names = append(names, ds.ColumnName(dim)) })
		parts = append(parts, strings.Join(names, "×"))
	}
	return strings.Join(parts, "; ")
}
