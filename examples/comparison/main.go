// Method comparison — the paper's demo part 3: "the experimental
// evaluation of HOS-Miner and the comparative study of HOS-Miner and
// the latest high-dimensional outlier detection technique, i.e. the
// evolutionary-based searching method, in terms of efficiency and
// effectiveness".
//
// This example runs both systems on an NBA-style season-statistics
// table with planted anomalous players and prints a side-by-side
// account of what each method reports and what it costs.
//
// Run: go run ./examples/comparison
//
// To serve the same queries to many clients over HTTP — with a
// result cache and live stats — use the hosserve service instead:
// go run ./cmd/hosserve (see README.md).
package main

import (
	"fmt"
	"log"
	"time"

	hosminer "repro"
	"repro/internal/evolutionary"
)

func main() {
	ds, truth, err := hosminer.GenerateNBA(500, 4, 31)
	if err != nil {
		log.Fatal(err)
	}
	norm, _ := ds.MinMaxNormalize()

	fmt.Printf("league: %d players, %d stats\n\n", ds.N(), ds.Dim())

	// --- HOS-Miner: exact outlying-subspace search -----------------
	m, err := hosminer.New(norm, hosminer.Config{
		K: 5, TQuantile: 0.97, SampleSize: 12, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := m.Preprocess(); err != nil {
		log.Fatal(err)
	}
	var hosPRF []hosminer.PRF
	var hosEvals int64
	for _, o := range truth.Outliers {
		res, err := m.OutlyingSubspacesOfPoint(o.Index)
		if err != nil {
			log.Fatal(err)
		}
		hosEvals += res.Counters.Evaluations
		hosPRF = append(hosPRF, hosminer.Score(res.Minimal,
			[]hosminer.Subspace{o.Subspace}, hosminer.MatchSubset))
	}
	hosTime := time.Since(start)

	// --- Evolutionary method (Aggarwal & Yu): sparse grid cells ----
	grid, err := evolutionary.NewGrid(norm, 8)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	perPoint := make(map[int][]hosminer.Subspace)
	var cellEvals int64
	for targetDim := 1; targetDim <= 3; targetDim++ {
		s, err := evolutionary.NewSearcher(grid, evolutionary.Config{
			Phi: 8, TargetDim: targetDim, Population: 40, Generations: 60,
			Seed: 31 + int64(targetDim),
		})
		if err != nil {
			log.Fatal(err)
		}
		res := s.Search()
		cellEvals += res.Evaluations
		for _, o := range truth.Outliers {
			perPoint[o.Index] = append(perPoint[o.Index],
				res.OutlyingSubspacesOf(grid, o.Index)...)
		}
	}
	var evoPRF []hosminer.PRF
	for _, o := range truth.Outliers {
		evoPRF = append(evoPRF, hosminer.Score(perPoint[o.Index],
			[]hosminer.Subspace{o.Subspace}, hosminer.MatchOverlap))
	}
	evoTime := time.Since(start)

	// --- side-by-side ----------------------------------------------
	fmt.Println("                       HOS-Miner          evolutionary")
	fmt.Printf("answer semantics       exact subspaces    sparse grid cells\n")
	fmt.Printf("work unit              %6d OD evals    %6d cell evals\n", hosEvals, cellEvals)
	fmt.Printf("wall time              %-15v    %-15v\n", hosTime.Round(time.Millisecond), evoTime.Round(time.Millisecond))
	fmt.Printf("mean recall            %-6.2f (subset)    %-6.2f (overlap)\n",
		meanRecall(hosPRF), meanRecall(evoPRF))
	fmt.Println()
	fmt.Println("HOS-Miner answers the per-point question directly and exactly;")
	fmt.Println("the evolutionary method finds globally sparse regions and only")
	fmt.Println("indirectly attributes subspaces to individual points.")
}

func meanRecall(prfs []hosminer.PRF) float64 {
	if len(prfs) == 0 {
		return 0
	}
	var sum float64
	for _, p := range prfs {
		sum += p.Recall
	}
	return sum / float64(len(prfs))
}
