// Athlete training analysis — the paper's first motivating scenario
// (§1): "it is critical to identify the specific subspace(s) in which
// an athlete deviates from his or her teammates ... Knowing the
// specific weakness (subspace) allows a more targeted training
// program to be designed."
//
// The example builds a squad of athletes with correlated performance
// attributes, plants a few with specific weaknesses, and uses
// HOS-Miner to point the coach at exactly the deviating attribute
// combinations.
//
// Run: go run ./examples/athlete
//
// To serve the same queries to many clients over HTTP — with a
// result cache and live stats — use the hosserve service instead:
// go run ./cmd/hosserve (see README.md).
package main

import (
	"fmt"
	"log"
	"strings"

	hosminer "repro"
)

func main() {
	ds, truth, err := hosminer.GenerateAthlete(400, 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	// Attributes mix scales (seconds, kg, cm ...): normalize before
	// distance-based analysis.
	norm, _ := ds.MinMaxNormalize()

	m, err := hosminer.New(norm, hosminer.Config{
		K: 6, TQuantile: 0.97, SampleSize: 16, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("squad of %d athletes, %d performance attributes\n", ds.N(), ds.Dim())
	fmt.Printf("attributes: %s\n\n", strings.Join(ds.Columns(), ", "))

	for _, athlete := range truth.Outliers {
		res, err := m.OutlyingSubspacesOfPoint(athlete.Index)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("athlete #%d — true planted weakness: %s\n",
			athlete.Index, describe(ds, athlete.Subspace))
		if !res.IsOutlierAnywhere {
			fmt.Println("  no deviation detected at this threshold")
			continue
		}
		fmt.Println("  detected deviating attribute combinations:")
		for i, s := range res.Minimal {
			if i >= 5 {
				fmt.Printf("    ... and %d more\n", len(res.Minimal)-5)
				break
			}
			fmt.Printf("    %s\n", describe(ds, s))
		}
		fmt.Printf("  (search evaluated %d of %d subspaces)\n\n",
			res.Counters.Evaluations, res.Counters.Total)
	}
}

// describe renders a subspace with attribute names.
func describe(ds *hosminer.Dataset, s hosminer.Subspace) string {
	var names []string
	s.EachDim(func(dim int) { names = append(names, ds.ColumnName(dim)) })
	return fmt.Sprintf("%v = {%s}", s, strings.Join(names, ", "))
}
