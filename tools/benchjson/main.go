// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_<n>.json trajectory record CI uploads as an
// artifact — ns/op, B/op, allocs/op per benchmark, plus derived
// shard-scaling ratios from BenchmarkShardedQuery.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./tools/benchjson -out BENCH_3.json
//	go run ./tools/benchjson -in bench.txt -out BENCH_3.json
//
// The converter is line-oriented and permissive: non-benchmark lines
// (package headers, PASS/ok, warnings) are skipped, so piping the
// whole `go test` stream in is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -GOMAXPROCS suffix, e.g. "BenchmarkShardedQuery/shards=4-8".
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are -1 when the run lacked -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	CPUs        int         `json:"cpus"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	// ShardSpeedup maps "<n>x" to ns/op(shards=1) / ns/op(shards=n)
	// from BenchmarkShardedQuery — the scatter-gather scaling record
	// (> 1 means n shards beat one). Empty when the input lacks the
	// benchmark.
	ShardSpeedup map[string]float64 `json:"shard_speedup,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run is the testable entry point.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		inPath  = fs.String("in", "", "bench output file (default: stdin)")
		outPath = fs.String("out", "", "JSON destination (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	benches, err := Parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	rep := &Report{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		CPUs:         runtime.NumCPU(),
		Benchmarks:   benches,
		ShardSpeedup: ShardSpeedups(benches),
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, buf, 0o644)
	}
	_, err = stdout.Write(buf)
	return err
}

// Parse extracts benchmark result lines from a `go test -bench`
// stream. A result line looks like:
//
//	BenchmarkName/sub=1-8   3721   97094 ns/op   552 B/op   10 allocs/op
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
		// Remaining fields come in (value, unit) pairs.
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				if b.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
					ok = true
				}
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// ShardSpeedups derives ns/op(shards=1)/ns/op(shards=n) ratios from
// BenchmarkShardedQuery sub-benchmarks. Names are matched on their
// "/shards=<n>" component, ignoring the -GOMAXPROCS suffix.
func ShardSpeedups(benches []Benchmark) map[string]float64 {
	byShards := map[int]float64{}
	for _, b := range benches {
		if !strings.Contains(b.Name, "BenchmarkShardedQuery/") {
			continue
		}
		i := strings.Index(b.Name, "shards=")
		if i < 0 {
			continue
		}
		numStr := b.Name[i+len("shards="):]
		if j := strings.IndexAny(numStr, "-/"); j >= 0 {
			numStr = numStr[:j]
		}
		n, err := strconv.Atoi(numStr)
		if err != nil || b.NsPerOp <= 0 {
			continue
		}
		byShards[n] = b.NsPerOp
	}
	base, ok := byShards[1]
	if !ok {
		return nil
	}
	out := map[string]float64{}
	for n, ns := range byShards {
		if n == 1 {
			continue
		}
		out[fmt.Sprintf("%dx", n)] = base / ns
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
