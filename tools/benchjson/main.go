// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_<n>.json trajectory record CI uploads as an
// artifact — ns/op, B/op, allocs/op and any custom b.ReportMetric
// units per benchmark, plus derived shard-scaling ratios from
// BenchmarkShardedQuery and append-throughput amortization from
// BenchmarkAppendThroughput.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./tools/benchjson -out BENCH_3.json
//	go run ./tools/benchjson -in bench.txt -out BENCH_3.json
//	go run ./tools/benchjson -in bench.txt -gate BENCH_6.json -min-shard-speedup 1.5
//
// The converter is line-oriented and permissive: non-benchmark lines
// (package headers, PASS/ok, warnings) are skipped, so piping the
// whole `go test` stream in is fine.
//
// With -gate, benchjson is CI's bench-regression gate: it compares
// the fresh run against the committed previous BENCH_<n>.json and
// exits non-zero on a >tolerance regression. allocs/op is always
// gated (it is hardware-independent); ns/op only when both runs saw
// the same CPU count; the shard-speedup floor only on multi-CPU runs
// (scatter-gather cannot beat a single index on one core).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -GOMAXPROCS suffix, e.g. "BenchmarkShardedQuery/shards=4-8".
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are -1 when the run lacked -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics carries custom b.ReportMetric units ("rows/s",
	// "fsyncs/row", …) keyed by unit; nil when the line had none.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	CPUs        int    `json:"cpus"`
	// CISingleCPU marks reports produced on a one-core runner: timing
	// comparisons against them are meaningful, parallel-scaling
	// assertions are not.
	CISingleCPU bool        `json:"ci_single_cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	// ShardSpeedup maps "<n>x" to ns/op(shards=1) / ns/op(shards=n)
	// from BenchmarkShardedQuery — the scatter-gather scaling record
	// (> 1 means n shards beat one). Empty when the input lacks the
	// benchmark.
	ShardSpeedup map[string]float64 `json:"shard_speedup,omitempty"`
	// AppendRowsPerSec maps "batch=<n>" to the rows/s metric from
	// BenchmarkAppendThroughput — the append lane's amortization
	// record. AppendFsyncsPerRow is its fsyncs/row twin. Empty when
	// the input lacks the benchmark.
	AppendRowsPerSec   map[string]float64 `json:"append_rows_per_sec,omitempty"`
	AppendFsyncsPerRow map[string]float64 `json:"append_fsyncs_per_row,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run is the testable entry point.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		inPath    = fs.String("in", "", "bench output file (default: stdin)")
		outPath   = fs.String("out", "", "JSON destination (default: stdout)")
		gatePath  = fs.String("gate", "", "previous BENCH_<n>.json to gate the fresh run against; a regression fails the command")
		tolerance = fs.Float64("tolerance", 0.10, "with -gate: allowed fractional regression in ns/op and allocs/op")
		minShard  = fs.Float64("min-shard-speedup", 0, "with -gate: required 4x shard speedup on multi-CPU runs (0 disables)")
		minAmort  = fs.Float64("min-append-amortization", 0, "with -gate: required batch=256 over batch=1 append row-throughput ratio, plus < 1 fsync/row at batch=256 (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	benches, err := Parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	rows, fsyncs := AppendThroughput(benches)
	rep := &Report{
		GeneratedAt:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		CPUs:               runtime.NumCPU(),
		CISingleCPU:        runtime.NumCPU() == 1,
		Benchmarks:         benches,
		ShardSpeedup:       ShardSpeedups(benches),
		AppendRowsPerSec:   rows,
		AppendFsyncsPerRow: fsyncs,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	// Write the artifact before gating: a failed gate should still
	// leave the fresh numbers on disk for the trajectory record.
	if *outPath != "" {
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			return err
		}
	} else if *gatePath == "" {
		if _, err := stdout.Write(buf); err != nil {
			return err
		}
	}
	if *gatePath != "" {
		prevBuf, err := os.ReadFile(*gatePath)
		if err != nil {
			return err
		}
		var prev Report
		if err := json.Unmarshal(prevBuf, &prev); err != nil {
			return fmt.Errorf("%s: %w", *gatePath, err)
		}
		violations := Gate(&prev, rep, *tolerance, *minShard, *minAmort, stdout)
		if len(violations) > 0 {
			return fmt.Errorf("bench gate failed: %d regression(s) vs %s", len(violations), *gatePath)
		}
	}
	return nil
}

// baseName strips the trailing -<GOMAXPROCS> suffix go test appends
// to benchmark names, so runs from machines with different core
// counts compare by the same key.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Gate compares the fresh report against the committed previous one
// and returns the violations (empty = pass), logging each comparison
// to out. Policy:
//
//   - allocs/op is gated unconditionally — allocation counts are
//     deterministic and hardware-independent. A zero baseline admits
//     zero: the hot path's zero-allocation contract, once recorded,
//     cannot silently erode.
//   - ns/op is gated only when both runs saw the same CPU count;
//     wall-clock across different machines is noise, not signal.
//   - the shard-speedup floor applies only on multi-CPU runs — on a
//     single core scatter-gather is pure overhead by construction,
//     which is exactly what ci_single_cpu records.
//   - the append-amortization floor is a within-run ratio (batch=256
//     rows/s over batch=1 rows/s) plus an absolute fsyncs/row ceiling,
//     both hardware-independent, so it applies whenever the input
//     carries BenchmarkAppendThroughput.
func Gate(prev, cur *Report, tolerance, minShardSpeedup, minAppendAmortization float64, out io.Writer) []string {
	var violations []string
	fail := func(format string, a ...any) {
		v := fmt.Sprintf(format, a...)
		violations = append(violations, v)
		fmt.Fprintln(out, "FAIL", v)
	}
	prevBy := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		prevBy[baseName(b.Name)] = b
	}
	sameCPU := prev.CPUs == cur.CPUs
	if !sameCPU {
		fmt.Fprintf(out, "skip ns/op gate: previous run had %d CPUs, this one %d\n", prev.CPUs, cur.CPUs)
	}
	for _, b := range cur.Benchmarks {
		name := baseName(b.Name)
		pb, ok := prevBy[name]
		if !ok {
			fmt.Fprintf(out, "new benchmark %s: no baseline, skipped\n", name)
			continue
		}
		if pb.AllocsPerOp >= 0 && b.AllocsPerOp >= 0 {
			limit := float64(pb.AllocsPerOp) * (1 + tolerance)
			if float64(b.AllocsPerOp) > limit {
				fail("%s: allocs/op %d exceeds baseline %d by more than %.0f%%",
					name, b.AllocsPerOp, pb.AllocsPerOp, tolerance*100)
			} else {
				fmt.Fprintf(out, "ok   %s: allocs/op %d (baseline %d)\n", name, b.AllocsPerOp, pb.AllocsPerOp)
			}
		}
		if sameCPU && pb.NsPerOp > 0 && b.NsPerOp > pb.NsPerOp*(1+tolerance) {
			fail("%s: %.0f ns/op exceeds baseline %.0f by more than %.0f%%",
				name, b.NsPerOp, pb.NsPerOp, tolerance*100)
		}
	}
	if minShardSpeedup > 0 {
		switch {
		case cur.CPUs == 1:
			fmt.Fprintln(out, "skip shard-speedup floor: single-CPU run (ci_single_cpu)")
		case cur.ShardSpeedup["4x"] == 0:
			fmt.Fprintln(out, "skip shard-speedup floor: no BenchmarkShardedQuery/shards=4 in input")
		case cur.ShardSpeedup["4x"] < minShardSpeedup:
			fail("shard speedup 4x = %.2f, floor is %.2f", cur.ShardSpeedup["4x"], minShardSpeedup)
		default:
			fmt.Fprintf(out, "ok   shard speedup 4x = %.2f (floor %.2f)\n", cur.ShardSpeedup["4x"], minShardSpeedup)
		}
	}
	if minAppendAmortization > 0 {
		base, big := cur.AppendRowsPerSec["batch=1"], cur.AppendRowsPerSec["batch=256"]
		switch {
		case base == 0 || big == 0:
			fmt.Fprintln(out, "skip append-amortization floor: no BenchmarkAppendThroughput batch=1/batch=256 in input")
		case big < base*minAppendAmortization:
			fail("append amortization batch=256/batch=1 = %.2fx, floor is %.2fx", big/base, minAppendAmortization)
		default:
			fmt.Fprintf(out, "ok   append amortization batch=256/batch=1 = %.2fx (floor %.2fx)\n", big/base, minAppendAmortization)
		}
		if f, ok := cur.AppendFsyncsPerRow["batch=256"]; ok {
			if f >= 1 {
				fail("append batch=256 issued %.3f fsyncs/row; group commit requires < 1", f)
			} else {
				fmt.Fprintf(out, "ok   append batch=256 fsyncs/row = %.4f (< 1)\n", f)
			}
		}
	}
	return violations
}

// Parse extracts benchmark result lines from a `go test -bench`
// stream. A result line looks like:
//
//	BenchmarkName/sub=1-8   3721   97094 ns/op   552 B/op   10 allocs/op
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
		// Remaining fields come in (value, unit) pairs.
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				if b.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
					ok = true
				}
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			default:
				// Custom b.ReportMetric units ("rows/s", "fsyncs/row", …).
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					if b.Metrics == nil {
						b.Metrics = map[string]float64{}
					}
					b.Metrics[fields[i+1]] = v
				}
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// AppendThroughput collects the rows/s and fsyncs/row metrics from
// BenchmarkAppendThroughput sub-benchmarks, keyed by their
// "batch=<n>" component (GOMAXPROCS suffix ignored). Either map is
// nil when the input lacks the metric.
func AppendThroughput(benches []Benchmark) (rows, fsyncs map[string]float64) {
	for _, b := range benches {
		if !strings.Contains(b.Name, "BenchmarkAppendThroughput/") {
			continue
		}
		i := strings.Index(b.Name, "batch=")
		if i < 0 {
			continue
		}
		key := b.Name[i:]
		if j := strings.IndexAny(key[len("batch="):], "-/"); j >= 0 {
			key = key[:len("batch=")+j]
		}
		if v, ok := b.Metrics["rows/s"]; ok {
			if rows == nil {
				rows = map[string]float64{}
			}
			rows[key] = v
		}
		if v, ok := b.Metrics["fsyncs/row"]; ok {
			if fsyncs == nil {
				fsyncs = map[string]float64{}
			}
			fsyncs[key] = v
		}
	}
	return rows, fsyncs
}

// ShardSpeedups derives ns/op(shards=1)/ns/op(shards=n) ratios from
// BenchmarkShardedQuery sub-benchmarks. Names are matched on their
// "/shards=<n>" component, ignoring the -GOMAXPROCS suffix.
func ShardSpeedups(benches []Benchmark) map[string]float64 {
	byShards := map[int]float64{}
	for _, b := range benches {
		if !strings.Contains(b.Name, "BenchmarkShardedQuery/") {
			continue
		}
		i := strings.Index(b.Name, "shards=")
		if i < 0 {
			continue
		}
		numStr := b.Name[i+len("shards="):]
		if j := strings.IndexAny(numStr, "-/"); j >= 0 {
			numStr = numStr[:j]
		}
		n, err := strconv.Atoi(numStr)
		if err != nil || b.NsPerOp <= 0 {
			continue
		}
		byShards[n] = b.NsPerOp
	}
	base, ok := byShards[1]
	if !ok {
		return nil
	}
	out := map[string]float64{}
	for n, ns := range byShards {
		if n == 1 {
			continue
		}
		out[fmt.Sprintf("%dx", n)] = base / ns
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
