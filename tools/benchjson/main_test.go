package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/shard
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkShardedQuery/shards=1-8         3721     97094 ns/op     552 B/op     10 allocs/op
BenchmarkShardedQuery/shards=2-8         3734     48720 ns/op     856 B/op     17 allocs/op
BenchmarkShardedQuery/shards=4-8         3536     30422 ns/op    1432 B/op     29 allocs/op
BenchmarkQueryWith-8                     1000   1200000 ns/op
BenchmarkAppendThroughput/batch=1-8        30  10681734 ns/op     1.000 fsyncs/row        93.62 rows/s
BenchmarkAppendThroughput/batch=256-8      15  31351196 ns/op     0.003906 fsyncs/row   8166 rows/s
PASS
ok      repro/internal/shard    1.799s
`

func TestParse(t *testing.T) {
	benches, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 6 {
		t.Fatalf("parsed %d benchmarks, want 6", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkShardedQuery/shards=1-8" || b.Iterations != 3721 ||
		b.NsPerOp != 97094 || b.BytesPerOp != 552 || b.AllocsPerOp != 10 {
		t.Fatalf("first bench = %+v", b)
	}
	// No -benchmem fields → -1 sentinels.
	last := benches[3]
	if last.BytesPerOp != -1 || last.AllocsPerOp != -1 {
		t.Fatalf("missing-benchmem sentinels: %+v", last)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	benches, err := Parse(strings.NewReader("hello\nBenchmarkBad notanumber 12 ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d from garbage", len(benches))
	}
}

func TestShardSpeedups(t *testing.T) {
	benches, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	sp := ShardSpeedups(benches)
	if math.Abs(sp["2x"]-97094.0/48720.0) > 1e-9 {
		t.Fatalf("2x speedup = %v", sp["2x"])
	}
	if math.Abs(sp["4x"]-97094.0/30422.0) > 1e-9 {
		t.Fatalf("4x speedup = %v", sp["4x"])
	}
	if _, ok := sp["1x"]; ok {
		t.Fatal("baseline included in speedups")
	}
	// Without the shards=1 baseline there is nothing to derive.
	if got := ShardSpeedups(benches[1:]); got != nil {
		t.Fatalf("speedups without baseline = %v", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-out", out}, strings.NewReader(sample), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 6 || rep.GoVersion == "" || rep.CPUs < 1 || rep.GeneratedAt == "" {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.ShardSpeedup) != 2 {
		t.Fatalf("shard speedups = %v", rep.ShardSpeedup)
	}
	if rep.AppendRowsPerSec["batch=1"] != 93.62 || rep.AppendRowsPerSec["batch=256"] != 8166 {
		t.Fatalf("append rows/s = %v", rep.AppendRowsPerSec)
	}
	if rep.AppendFsyncsPerRow["batch=256"] != 0.003906 {
		t.Fatalf("append fsyncs/row = %v", rep.AppendFsyncsPerRow)
	}

	// Stdout mode.
	stdout.Reset()
	if err := run(nil, strings.NewReader(sample), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "\"ns_per_op\": 97094") {
		t.Fatalf("stdout output:\n%s", stdout.String())
	}

	// Empty input is an error, not an empty artifact.
	if err := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); err == nil {
		t.Fatal("empty input accepted")
	}
	// Missing -in file surfaces the open error.
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "nope.txt")}, nil, &stdout, &stderr); err == nil {
		t.Fatal("missing input file accepted")
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkQueryWith-8":           "BenchmarkQueryWith",
		"BenchmarkQueryWith/shards=0-16": "BenchmarkQueryWith/shards=0",
		"BenchmarkQueryWith/shards=0":    "BenchmarkQueryWith/shards=0",
		"BenchmarkQueryBatchCore":        "BenchmarkQueryBatchCore",
		"BenchmarkFoo/sub-case":          "BenchmarkFoo/sub-case",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func gateReport(cpus int, benches ...Benchmark) *Report {
	return &Report{CPUs: cpus, CISingleCPU: cpus == 1, Benchmarks: benches, ShardSpeedup: ShardSpeedups(benches)}
}

func TestGateAllocsAlwaysEnforced(t *testing.T) {
	prev := gateReport(1, Benchmark{Name: "BenchmarkQueryWith/shards=0", NsPerOp: 100, AllocsPerOp: 0})
	// Different CPU count: ns/op must be skipped, allocs still gated.
	cur := gateReport(8, Benchmark{Name: "BenchmarkQueryWith/shards=0-8", NsPerOp: 500, AllocsPerOp: 2})
	var out bytes.Buffer
	v := Gate(prev, cur, 0.10, 0, 0, &out)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("violations = %v\n%s", v, out.String())
	}
	if !strings.Contains(out.String(), "skip ns/op gate") {
		t.Fatalf("missing ns/op skip notice:\n%s", out.String())
	}
	// Zero-baseline allocs admit zero, so an equal run passes.
	cur.Benchmarks[0].AllocsPerOp = 0
	if v := Gate(prev, cur, 0.10, 0, 0, &out); len(v) != 0 {
		t.Fatalf("clean run flagged: %v", v)
	}
}

func TestGateNsOnlyOnMatchingCPUs(t *testing.T) {
	prev := gateReport(4, Benchmark{Name: "BenchmarkQueryBatchCore", NsPerOp: 1000, AllocsPerOp: 3})
	cur := gateReport(4, Benchmark{Name: "BenchmarkQueryBatchCore-4", NsPerOp: 1200, AllocsPerOp: 3})
	var out bytes.Buffer
	v := Gate(prev, cur, 0.10, 0, 0, &out)
	if len(v) != 1 || !strings.Contains(v[0], "ns/op") {
		t.Fatalf("violations = %v", v)
	}
	// Within tolerance passes.
	cur.Benchmarks[0].NsPerOp = 1050
	if v := Gate(prev, cur, 0.10, 0, 0, &out); len(v) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", v)
	}
}

func TestGateShardSpeedupSkippedOnSingleCPU(t *testing.T) {
	sharded := []Benchmark{
		{Name: "BenchmarkShardedQuery/shards=1", NsPerOp: 1000, AllocsPerOp: 1},
		{Name: "BenchmarkShardedQuery/shards=4", NsPerOp: 900, AllocsPerOp: 1},
	}
	prev := gateReport(1, sharded...)
	cur := gateReport(1, sharded...)
	var out bytes.Buffer
	// Speedup 1.11 < floor 1.5, but cpus==1 skips the assertion.
	if v := Gate(prev, cur, 0.10, 1.5, 0, &out); len(v) != 0 {
		t.Fatalf("single-CPU run hit the shard floor: %v\n%s", v, out.String())
	}
	if !strings.Contains(out.String(), "skip shard-speedup floor: single-CPU") {
		t.Fatalf("missing skip notice:\n%s", out.String())
	}
	// The same numbers on a multi-CPU run fail it.
	cur4 := gateReport(4, sharded...)
	if v := Gate(prev, cur4, 0.10, 1.5, 0, &out); len(v) != 1 || !strings.Contains(v[0], "shard speedup") {
		t.Fatalf("violations = %v", v)
	}
	// And a healthy multi-CPU speedup passes.
	cur4.ShardSpeedup = map[string]float64{"4x": 2.8}
	if v := Gate(prev, cur4, 0.10, 1.5, 0, &out); len(v) != 0 {
		t.Fatalf("healthy speedup flagged: %v", v)
	}
}

func TestGateNewBenchmarkHasNoBaseline(t *testing.T) {
	prev := gateReport(1)
	cur := gateReport(1, Benchmark{Name: "BenchmarkBrandNew", NsPerOp: 10, AllocsPerOp: 99})
	var out bytes.Buffer
	if v := Gate(prev, cur, 0.10, 0, 0, &out); len(v) != 0 {
		t.Fatalf("baseline-less benchmark gated: %v", v)
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Fatalf("missing skip notice:\n%s", out.String())
	}
}

func TestParseCustomMetrics(t *testing.T) {
	benches, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	b := benches[4]
	if b.Metrics["rows/s"] != 93.62 || b.Metrics["fsyncs/row"] != 1.0 {
		t.Fatalf("custom metrics = %v", b.Metrics)
	}
	// Lines without ReportMetric units carry no metrics map.
	if benches[0].Metrics != nil {
		t.Fatalf("unexpected metrics on %s: %v", benches[0].Name, benches[0].Metrics)
	}
}

func TestAppendThroughput(t *testing.T) {
	benches, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rows, fsyncs := AppendThroughput(benches)
	if rows["batch=1"] != 93.62 || rows["batch=256"] != 8166 {
		t.Fatalf("rows/s = %v", rows)
	}
	if fsyncs["batch=1"] != 1.0 || fsyncs["batch=256"] != 0.003906 {
		t.Fatalf("fsyncs/row = %v", fsyncs)
	}
	// Without the benchmark there is nothing to derive.
	if r, f := AppendThroughput(benches[:4]); r != nil || f != nil {
		t.Fatalf("derived from no append benches: %v, %v", r, f)
	}
}

func TestGateAppendAmortization(t *testing.T) {
	prev := gateReport(4)
	healthy := gateReport(4)
	healthy.AppendRowsPerSec = map[string]float64{"batch=1": 100, "batch=256": 900}
	healthy.AppendFsyncsPerRow = map[string]float64{"batch=256": 0.004}
	var out bytes.Buffer
	if v := Gate(prev, healthy, 0.10, 0, 5, &out); len(v) != 0 {
		t.Fatalf("healthy amortization flagged: %v\n%s", v, out.String())
	}
	// Below the floor fails.
	flat := gateReport(4)
	flat.AppendRowsPerSec = map[string]float64{"batch=1": 100, "batch=256": 300}
	flat.AppendFsyncsPerRow = map[string]float64{"batch=256": 0.004}
	if v := Gate(prev, flat, 0.10, 0, 5, &out); len(v) != 1 || !strings.Contains(v[0], "append amortization") {
		t.Fatalf("violations = %v", v)
	}
	// One fsync per row at batch=256 means group commit is broken.
	syncy := gateReport(4)
	syncy.AppendRowsPerSec = map[string]float64{"batch=1": 100, "batch=256": 900}
	syncy.AppendFsyncsPerRow = map[string]float64{"batch=256": 1.0}
	if v := Gate(prev, syncy, 0.10, 0, 5, &out); len(v) != 1 || !strings.Contains(v[0], "fsyncs/row") {
		t.Fatalf("violations = %v", v)
	}
	// No append benchmark in the input: skipped, not failed.
	out.Reset()
	if v := Gate(prev, gateReport(4), 0.10, 0, 5, &out); len(v) != 0 {
		t.Fatalf("missing benchmark failed the gate: %v", v)
	}
	if !strings.Contains(out.String(), "skip append-amortization floor") {
		t.Fatalf("missing skip notice:\n%s", out.String())
	}
}

func TestRunGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	prevPath := filepath.Join(dir, "BENCH_prev.json")
	var stdout, stderr bytes.Buffer

	// Produce a baseline from the sample stream.
	if err := run([]string{"-out", prevPath}, strings.NewReader(sample), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// Gating the identical stream against it passes.
	if err := run([]string{"-gate", prevPath}, strings.NewReader(sample), &stdout, &stderr); err != nil {
		t.Fatalf("self-gate failed: %v\n%s", err, stdout.String())
	}
	// A run with an alloc regression fails, and -out still lands.
	regressed := strings.Replace(sample, "10 allocs/op", "99 allocs/op", 1)
	outPath := filepath.Join(dir, "BENCH_cur.json")
	err := run([]string{"-gate", prevPath, "-out", outPath}, strings.NewReader(regressed), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "bench gate failed") {
		t.Fatalf("err = %v", err)
	}
	if _, statErr := os.Stat(outPath); statErr != nil {
		t.Fatalf("failed gate did not write the artifact: %v", statErr)
	}
	// Missing baseline file surfaces the open error.
	if err := run([]string{"-gate", filepath.Join(dir, "nope.json")}, strings.NewReader(sample), &stdout, &stderr); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
