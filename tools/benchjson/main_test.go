package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/shard
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkShardedQuery/shards=1-8         3721     97094 ns/op     552 B/op     10 allocs/op
BenchmarkShardedQuery/shards=2-8         3734     48720 ns/op     856 B/op     17 allocs/op
BenchmarkShardedQuery/shards=4-8         3536     30422 ns/op    1432 B/op     29 allocs/op
BenchmarkQueryWith-8                     1000   1200000 ns/op
PASS
ok      repro/internal/shard    1.799s
`

func TestParse(t *testing.T) {
	benches, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkShardedQuery/shards=1-8" || b.Iterations != 3721 ||
		b.NsPerOp != 97094 || b.BytesPerOp != 552 || b.AllocsPerOp != 10 {
		t.Fatalf("first bench = %+v", b)
	}
	// No -benchmem fields → -1 sentinels.
	last := benches[3]
	if last.BytesPerOp != -1 || last.AllocsPerOp != -1 {
		t.Fatalf("missing-benchmem sentinels: %+v", last)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	benches, err := Parse(strings.NewReader("hello\nBenchmarkBad notanumber 12 ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d from garbage", len(benches))
	}
}

func TestShardSpeedups(t *testing.T) {
	benches, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	sp := ShardSpeedups(benches)
	if math.Abs(sp["2x"]-97094.0/48720.0) > 1e-9 {
		t.Fatalf("2x speedup = %v", sp["2x"])
	}
	if math.Abs(sp["4x"]-97094.0/30422.0) > 1e-9 {
		t.Fatalf("4x speedup = %v", sp["4x"])
	}
	if _, ok := sp["1x"]; ok {
		t.Fatal("baseline included in speedups")
	}
	// Without the shards=1 baseline there is nothing to derive.
	if got := ShardSpeedups(benches[1:]); got != nil {
		t.Fatalf("speedups without baseline = %v", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-out", out}, strings.NewReader(sample), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 4 || rep.GoVersion == "" || rep.CPUs < 1 || rep.GeneratedAt == "" {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.ShardSpeedup) != 2 {
		t.Fatalf("shard speedups = %v", rep.ShardSpeedup)
	}

	// Stdout mode.
	stdout.Reset()
	if err := run(nil, strings.NewReader(sample), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "\"ns_per_op\": 97094") {
		t.Fatalf("stdout output:\n%s", stdout.String())
	}

	// Empty input is an error, not an empty artifact.
	if err := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); err == nil {
		t.Fatal("empty input accepted")
	}
	// Missing -in file surfaces the open error.
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "nope.txt")}, nil, &stdout, &stderr); err == nil {
		t.Fatal("missing input file accepted")
	}
}
