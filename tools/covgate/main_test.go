package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: set
repro/internal/core/miner.go:10.2,12.3 4 1
repro/internal/core/miner.go:14.2,16.3 6 0
repro/internal/core/sub/extra.go:1.1,2.2 10 1
repro/internal/server/server.go:5.1,6.2 10 1
repro/internal/serverish/other.go:5.1,6.2 10 0
`

func writeProfile(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(p, []byte(sampleProfile), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseLine(t *testing.T) {
	s, c, file, ok := parseLine("repro/internal/core/miner.go:148.64,153.2 4 1")
	if !ok || s != 4 || c != 1 || file != "repro/internal/core/miner.go" {
		t.Fatalf("parsed (%d,%d,%q,%v)", s, c, file, ok)
	}
	if _, _, _, ok := parseLine("mode: set"); ok {
		t.Fatal("mode header parsed as body line")
	}
	if _, _, _, ok := parseLine("garbage"); ok {
		t.Fatal("garbage parsed")
	}
	if _, _, _, ok := parseLine("f.go:1.1,2.2 4"); ok {
		t.Fatal("line with missing hit count parsed")
	}
	if _, _, _, ok := parseLine("f.go:1.1,2.2 four one"); ok {
		t.Fatal("non-numeric fields parsed")
	}
}

func TestPercentEmpty(t *testing.T) {
	// A package with no profile rows reports 0%, not NaN.
	if got := (pkgCov{}).percent(); got != 0 {
		t.Fatalf("empty pkgCov percent = %v, want 0", got)
	}
}

func TestRunErrors(t *testing.T) {
	p := writeProfile(t)
	if err := run([]string{"-profile", p}, os.Stdout); err == nil || !strings.Contains(err.Error(), "no package prefixes") {
		t.Fatalf("no positional packages: %v", err)
	}
	if err := run([]string{"-profile", filepath.Join(t.TempDir(), "absent.out"), "repro/internal/core"}, os.Stdout); err == nil {
		t.Fatal("missing profile passed")
	}
	if err := run([]string{"-min", "not-a-number", "repro/internal/core"}, os.Stdout); err == nil {
		t.Fatal("malformed -min passed flag parsing")
	}
}

func TestGatePassesAndFails(t *testing.T) {
	p := writeProfile(t)
	// core: 4 covered / 10 total = 40% (sub/extra.go is a different
	// package and does not count); server: 100%.
	if err := run([]string{"-profile", p, "-min", "40", "repro/internal/core", "repro/internal/server"}, os.Stdout); err != nil {
		t.Fatalf("gate at 40%% failed: %v", err)
	}
	err := run([]string{"-profile", p, "-min", "80", "repro/internal/core", "repro/internal/server"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "below") {
		t.Fatalf("gate at 80%% passed: %v", err)
	}
}

func TestGatePrefixIsPathAware(t *testing.T) {
	p := writeProfile(t)
	// repro/internal/server must NOT absorb repro/internal/serverish
	// (0% covered); if it did, the 95% gate would fail.
	if err := run([]string{"-profile", p, "-min", "95", "repro/internal/server"}, os.Stdout); err != nil {
		t.Fatalf("prefix matching leaked across package boundaries: %v", err)
	}
}

func TestGateDoesNotAbsorbSubpackages(t *testing.T) {
	p := writeProfile(t)
	// A gated package is matched exactly: repro/internal/core does not
	// fold in repro/internal/core/sub. Test-less helper subpackages
	// show up in ./... profiles as all-zero rows — exercised only
	// through their parent's tests, which default coverage does not
	// credit — and absorbing them would fail the parent spuriously.
	// Here sub is 100% covered and core alone is 40%: a 50% gate on
	// core must fail, proving sub's rows were not folded in.
	err := run([]string{"-profile", p, "-min", "50", "repro/internal/core"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "below") {
		t.Fatalf("subpackage rows leaked into the parent's gate: %v", err)
	}
	// And the subpackage is gateable in its own right.
	if err := run([]string{"-profile", p, "-min", "95", "repro/internal/core/sub"}, os.Stdout); err != nil {
		t.Fatalf("exact subpackage gate failed: %v", err)
	}
}

func TestGateUnknownPackage(t *testing.T) {
	p := writeProfile(t)
	if err := run([]string{"-profile", p, "repro/internal/nonexistent"}, os.Stdout); err == nil {
		t.Fatal("unknown package passed the gate")
	}
}
