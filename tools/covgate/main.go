// Command covgate enforces a minimum per-package statement-coverage
// threshold from a Go cover profile — the CI gate behind the
// "internal/core and internal/server stay well-tested" guarantee.
//
// Usage:
//
//	go test -coverprofile=coverage.out ./...
//	go run ./tools/covgate -profile coverage.out -min 85 repro/internal/core repro/internal/server
//
// Each positional argument is one import path, matched against the
// directory of each profile line's file — exactly, not as a prefix:
// a gated package does not absorb its subpackages. (Test-less helper
// subpackages like internal/overload/faultinject appear in ./...
// profiles as all-zero rows — they are exercised through their
// parent's tests, which default coverage does not credit, and folding
// them in would fail the parent's gate spuriously.) The command
// prints a coverage line per gated package and exits non-zero when
// any falls below the threshold.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covgate:", err)
		os.Exit(1)
	}
}

// pkgCov accumulates statement counts for one gated package prefix.
type pkgCov struct {
	total   int
	covered int
}

func (p pkgCov) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("covgate", flag.ContinueOnError)
	profile := fs.String("profile", "coverage.out", "cover profile path (go test -coverprofile)")
	min := fs.Float64("min", 85, "minimum statement coverage percent per gated package")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		return fmt.Errorf("no package prefixes given")
	}

	f, err := os.Open(*profile)
	if err != nil {
		return err
	}
	defer f.Close()

	cov := make(map[string]*pkgCov, len(pkgs))
	for _, p := range pkgs {
		cov[p] = &pkgCov{}
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		stmts, count, file, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		for _, p := range pkgs {
			if path.Dir(file) == p {
				cov[p].total += stmts
				if count > 0 {
					cov[p].covered += stmts
				}
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	failed := false
	for _, p := range pkgs {
		c := cov[p]
		if c.total == 0 {
			fmt.Fprintf(out, "FAIL %s: no statements in profile (wrong prefix or profile?)\n", p)
			failed = true
			continue
		}
		status := "ok  "
		if c.percent() < *min {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(out, "%s %s: %.1f%% of statements (gate %.1f%%)\n", status, p, c.percent(), *min)
	}
	if failed {
		return fmt.Errorf("coverage below %.1f%%", *min)
	}
	return nil
}

// parseLine parses one profile body line:
//
//	repro/internal/core/miner.go:148.64,153.2 4 1
//
// returning (statements, hit count, file path, ok). The "mode:" header
// and malformed lines report ok = false.
func parseLine(line string) (stmts, count int, file string, ok bool) {
	if strings.HasPrefix(line, "mode:") || line == "" {
		return 0, 0, "", false
	}
	colon := strings.LastIndex(line, ":")
	if colon < 0 {
		return 0, 0, "", false
	}
	fields := strings.Fields(line[colon+1:])
	if len(fields) != 3 {
		return 0, 0, "", false
	}
	s, err1 := strconv.Atoi(fields[1])
	c, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		return 0, 0, "", false
	}
	return s, c, line[:colon], true
}
