// Command hosvet is the repo's static-analysis gate. It bundles the
// analyzers under internal/analysis — viewpin, durability, statslock,
// hotpath, determinism, lostcancel — into one vet-style binary that
// enforces the invariants the compiler cannot see: one pinned epoch
// view per request path, WAL-commit-before-publish, single-lock stats
// commits, allocation-free hot paths, and a deterministic engine
// core.
//
// Two modes:
//
//	hosvet ./...                      # standalone, like staticcheck
//	go vet -vettool=$(which hosvet) ./...   # unit-checker protocol
//
// Standalone mode loads the packages matched by the patterns and
// exits 1 with positioned diagnostics if any invariant is violated,
// 2 on load errors. The vettool mode implements the cmd/go unit
// protocol: a -V=full version handshake, then one JSON config file
// per compile unit.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/durability"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lostcancel"
	"repro/internal/analysis/statslock"
	"repro/internal/analysis/viewpin"
)

// version participates in go vet's action caching: bump it whenever
// an analyzer's behavior changes, or stale results may be replayed.
const version = "hosvet version 3"

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		viewpin.Analyzer,
		durability.Analyzer,
		statslock.Analyzer,
		hotpath.Analyzer,
		determinism.Analyzer,
		lostcancel.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	for _, a := range args {
		if a == "-V=full" || a == "-V" || a == "--V=full" {
			fmt.Fprintln(stdout, version)
			return 0
		}
		if a == "-flags" || a == "--flags" {
			// cmd/go asks which flags the tool supports; hosvet has
			// none beyond the protocol itself.
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0], stderr)
	}
	return runStandalone(args, stderr)
}

func runStandalone(patterns []string, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "hosvet: %v\n", err)
		return 2
	}
	bad := false
	for _, p := range pkgs {
		for _, d := range analysis.Run(analyzers(), p.Fset, p.Files, p.Pkg, p.Info) {
			fmt.Fprintln(stderr, d)
			bad = true
		}
	}
	if bad {
		return 1
	}
	return 0
}

// vetConfig is the JSON compile-unit description cmd/go hands a
// -vettool (the x/tools unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "hosvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "hosvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// hosvet exports no facts, but cmd/go requires the vetx output to
	// exist for its action cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "hosvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := checkUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "hosvet: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	return 1
}

func checkUnit(cfg *vetConfig) ([]analysis.Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The invariants target production code; test variants of a
		// package legitimately break several of them.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return analysis.Run(analyzers(), fset, files, pkg, info), nil
}
