package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func inDir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(old) })
}

func TestVersionHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("version handshake exited %d", code)
	}
	if !strings.HasPrefix(stdout.String(), "hosvet version") {
		t.Fatalf("version output = %q", stdout.String())
	}
}

func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags handshake exited %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("-flags output = %q, want []", stdout.String())
	}
}

func TestStandaloneFlagsViolation(t *testing.T) {
	inDir(t, "testdata/vetmod")
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "vetmod.go:") || !strings.Contains(out, "viewpin:") {
		t.Fatalf("diagnostic missing position or analyzer name:\n%s", out)
	}
}

func TestStandaloneCleanTree(t *testing.T) {
	inDir(t, "testdata/cleanmod")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr.String())
	}
}

func TestStandaloneLoadError(t *testing.T) {
	inDir(t, t.TempDir())
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 on load failure", code)
	}
}

// listedUnit mirrors the go list fields needed to build a vet config.
type listedUnit struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// buildUnitConfig assembles the cmd/go unit-checker config for the
// fixture module, exactly as go vet would: export data for every
// dependency, absolute GoFiles, an identity import map.
func buildUnitConfig(t *testing.T, modDir string) string {
	t.Helper()
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,DepOnly", ".")
	cmd.Dir = modDir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	packageFile := map[string]string{}
	importMap := map[string]string{}
	var target *listedUnit
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		u := new(listedUnit)
		if err := dec.Decode(u); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if u.Export != "" {
			packageFile[u.ImportPath] = u.Export
			importMap[u.ImportPath] = u.ImportPath
		}
		if !u.DepOnly {
			target = u
		}
	}
	if target == nil {
		t.Fatal("fixture target not found in go list output")
	}
	goFiles := make([]string, len(target.GoFiles))
	for i, f := range target.GoFiles {
		goFiles[i] = filepath.Join(target.Dir, f)
	}
	cfg := vetConfig{
		ID:          target.ImportPath,
		Compiler:    "gc",
		Dir:         target.Dir,
		ImportPath:  target.ImportPath,
		GoFiles:     goFiles,
		ImportMap:   importMap,
		PackageFile: packageFile,
		VetxOutput:  filepath.Join(t.TempDir(), "unit.vetx"),
	}
	data, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unit.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUnitModeFlagsViolation(t *testing.T) {
	cfgPath := buildUnitConfig(t, "testdata/vetmod")
	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "viewpin:") {
		t.Fatalf("unit mode lost the diagnostic:\n%s", stderr.String())
	}
	// The vetx facts file must exist for cmd/go's action cache.
	var cfg vetConfig
	data, _ := os.ReadFile(cfgPath)
	_ = json.Unmarshal(data, &cfg)
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Fatalf("vetx output not written: %v", err)
	}
}

func TestUnitModeClean(t *testing.T) {
	cfgPath := buildUnitConfig(t, "testdata/cleanmod")
	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr.String())
	}
}

func TestUnitModeVetxOnly(t *testing.T) {
	cfgPath := buildUnitConfig(t, "testdata/vetmod")
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.VetxOnly = true
	data, _ = json.Marshal(&cfg)
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("VetxOnly run exited %d: %s", code, stderr.String())
	}
}

func TestUnitModeBadConfig(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "absent.cfg")}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing cfg file: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &stdout, &stderr); code != 2 {
		t.Fatalf("malformed cfg: exit %d, want 2", code)
	}
}

// writeUnitCfg builds a minimal hand-rolled unit config around the
// given source files — no export data, so only import-free sources
// typecheck.
func writeUnitCfg(t *testing.T, cfg *vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unit.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeSource(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUnitModeTypecheckFailure(t *testing.T) {
	file := writeSource(t, "broken.go", "package p\n\nvar x int = \"not an int\"\n")
	cfg := &vetConfig{ID: "p", Compiler: "gc", ImportPath: "p", GoFiles: []string{file}}
	var stdout, stderr bytes.Buffer
	if code := run([]string{writeUnitCfg(t, cfg)}, &stdout, &stderr); code != 2 {
		t.Fatalf("type error: exit %d, want 2; stderr:\n%s", code, stderr.String())
	}

	// cmd/go sets SucceedOnTypecheckFailure for vet units whose compile
	// already failed; hosvet must then stay quiet.
	cfg.SucceedOnTypecheckFailure = true
	stderr.Reset()
	if code := run([]string{writeUnitCfg(t, cfg)}, &stdout, &stderr); code != 0 {
		t.Fatalf("SucceedOnTypecheckFailure: exit %d, want 0; stderr:\n%s", code, stderr.String())
	}
}

func TestUnitModeParseError(t *testing.T) {
	file := writeSource(t, "syntax.go", "package p\n\nfunc {\n")
	cfg := &vetConfig{ID: "p", Compiler: "gc", ImportPath: "p", GoFiles: []string{file}}
	var stdout, stderr bytes.Buffer
	if code := run([]string{writeUnitCfg(t, cfg)}, &stdout, &stderr); code != 2 {
		t.Fatalf("syntax error: exit %d, want 2", code)
	}
}

func TestUnitModeTestFilesOnly(t *testing.T) {
	// Test variants legitimately break the invariants; a unit made of
	// only _test.go files is skipped entirely.
	file := writeSource(t, "p_test.go", "package p\n")
	cfg := &vetConfig{ID: "p [p.test]", Compiler: "gc", ImportPath: "p", GoFiles: []string{file}}
	var stdout, stderr bytes.Buffer
	if code := run([]string{writeUnitCfg(t, cfg)}, &stdout, &stderr); code != 0 {
		t.Fatalf("test-only unit: exit %d, want 0; stderr:\n%s", code, stderr.String())
	}
}

func TestUnitModeMissingExportData(t *testing.T) {
	file := writeSource(t, "imports.go", "package p\n\nimport \"fmt\"\n\nvar _ = fmt.Sprint\n")
	cfg := &vetConfig{ID: "p", Compiler: "gc", ImportPath: "p", GoFiles: []string{file}}
	var stdout, stderr bytes.Buffer
	if code := run([]string{writeUnitCfg(t, cfg)}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing export data: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "fmt") {
		t.Fatalf("error should name the unresolvable import:\n%s", stderr.String())
	}
}

func TestUnitModeVetxWriteFailure(t *testing.T) {
	file := writeSource(t, "ok.go", "package p\n")
	cfg := &vetConfig{
		ID: "p", Compiler: "gc", ImportPath: "p", GoFiles: []string{file},
		VetxOutput: filepath.Join(t.TempDir(), "no", "such", "dir", "unit.vetx"),
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{writeUnitCfg(t, cfg)}, &stdout, &stderr); code != 2 {
		t.Fatalf("unwritable vetx output: exit %d, want 2", code)
	}
}

// TestGoVetVettool is the end-to-end proof for the acceptance
// criterion: build the binary and drive it through
// `go vet -vettool=` on a module with a deliberate violation.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "hosvet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hosvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = "testdata/vetmod"
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet should fail on the violation; output:\n%s", out)
	}
	if !strings.Contains(string(out), "viewpin:") {
		t.Fatalf("go vet output missing the positioned diagnostic:\n%s", out)
	}

	clean := exec.Command("go", "vet", "-vettool="+bin, "./...")
	clean.Dir = "testdata/cleanmod"
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet on the clean module failed: %v\n%s", err, out)
	}
}
