module vetmod

go 1.23
