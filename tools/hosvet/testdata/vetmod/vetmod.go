// Package vetmod is the hosvet driver's test fixture: one deliberate
// viewpin violation (the double Load in torn) plus clean code, so
// driver tests can assert both the flagged and quiet behavior.
package vetmod

import "sync/atomic"

type view struct{ n int }

type dataset struct {
	cur atomic.Pointer[view]
}

func torn(d *dataset) int {
	return d.cur.Load().n + d.cur.Load().n
}

// Pinned is the clean counterpart.
func Pinned(d *dataset) int {
	v := d.cur.Load()
	return v.n + v.n
}

var _ = torn
