// Package cleanmod violates nothing; hosvet must exit 0 on it.
package cleanmod

import "sync/atomic"

type view struct{ n int }

type dataset struct {
	cur atomic.Pointer[view]
}

// Pinned loads the epoch view exactly once.
func Pinned(d *dataset) int {
	v := d.cur.Load()
	return v.n * 2
}
