module cleanmod

go 1.23
