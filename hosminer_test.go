package hosminer_test

import (
	"path/filepath"
	"testing"

	hosminer "repro"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way a
// downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, truth, err := hosminer.GenerateSynthetic(hosminer.SyntheticConfig{
		N: 400, D: 6, NumOutliers: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := hosminer.New(ds, hosminer.Config{
		K: 5, TQuantile: 0.95, SampleSize: 12, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}

	var prfs []hosminer.PRF
	for _, o := range truth.Outliers {
		res, err := m.OutlyingSubspacesOfPoint(o.Index)
		if err != nil {
			t.Fatal(err)
		}
		if !res.IsOutlierAnywhere {
			t.Fatalf("planted outlier %d undetected", o.Index)
		}
		prfs = append(prfs, hosminer.Score(res.Minimal, []hosminer.Subspace{o.Subspace}, hosminer.MatchSubset))
	}
	// On this easy synthetic instance the planted subspaces should be
	// recalled.
	for i, p := range prfs {
		if p.Recall == 0 {
			t.Fatalf("outlier %d: zero recall", i)
		}
	}
}

func TestPublicSubspaceHelpers(t *testing.T) {
	s := hosminer.NewSubspace(0, 2)
	if s.String() != "[0,2]" {
		t.Fatalf("String = %q", s.String())
	}
	back, err := hosminer.ParseSubspace("[0,2]")
	if err != nil || back != s {
		t.Fatalf("parse: %v %v", back, err)
	}
	if hosminer.FullSubspace(3).Card() != 3 {
		t.Fatal("FullSubspace")
	}
	min := hosminer.MinimalSubspaces([]hosminer.Subspace{
		hosminer.NewSubspace(0), hosminer.NewSubspace(0, 1),
	})
	if len(min) != 1 || min[0] != hosminer.NewSubspace(0) {
		t.Fatalf("MinimalSubspaces = %v", min)
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	ds, _, err := hosminer.GenerateAthlete(50, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "athlete.csv")
	if err := hosminer.SaveCSV(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := hosminer.LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() {
		t.Fatal("round trip shape")
	}
	if back.ColumnName(0) != ds.ColumnName(0) {
		t.Fatal("column names lost")
	}
}

func TestPublicPseudoRealGenerators(t *testing.T) {
	for name, gen := range map[string]func(int, int, int64) (*hosminer.Dataset, hosminer.GroundTruth, error){
		"athlete": hosminer.GenerateAthlete,
		"medical": hosminer.GenerateMedical,
		"nba":     hosminer.GenerateNBA,
	} {
		ds, truth, err := gen(100, 3, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.N() != 100 || len(truth.Outliers) != 3 {
			t.Fatalf("%s: shape", name)
		}
	}
}

func TestPublicExternalQueryWithRowsAPI(t *testing.T) {
	rows := [][]float64{}
	for i := 0; i < 60; i++ {
		rows = append(rows, []float64{float64(i%10) * 0.1, float64(i%7) * 0.1, 0.5})
	}
	ds, err := hosminer.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := hosminer.New(ds, hosminer.Config{K: 4, T: 5, Metric: hosminer.L2, Backend: hosminer.BackendLinear, Policy: hosminer.PolicyTSF})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.OutlyingSubspaces([]float64{0.5, 0.3, 99})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsOutlierAnywhere {
		t.Fatal("external outlier missed")
	}
	for _, s := range res.Minimal {
		if !s.Contains(2) {
			t.Fatalf("minimal %v should involve dim 2", s)
		}
	}
}
