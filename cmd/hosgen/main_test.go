package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataio"
)

func TestRunToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-type", "synthetic", "-n", "20", "-d", "3", "-outliers", "2"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataio.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 20 || ds.Dim() != 3 {
		t.Fatalf("shape (%d,%d)", ds.N(), ds.Dim())
	}
}

func TestRunToFilesWithTruth(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "d.csv")
	truthPath := filepath.Join(dir, "t.csv")
	var out, errBuf bytes.Buffer
	err := run([]string{"-type", "synthetic", "-n", "30", "-d", "4",
		"-outliers", "3", "-out", dataPath, "-truth", truthPath}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataio.LoadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 30 {
		t.Fatalf("N = %d", ds.N())
	}
	truth, err := os.ReadFile(truthPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(truth)), "\n")
	if len(lines) != 4 || lines[0] != "index,subspace" {
		t.Fatalf("truth file:\n%s", truth)
	}
	if !strings.Contains(errBuf.String(), "wrote 30 points") {
		t.Fatalf("stderr: %q", errBuf.String())
	}
}

func TestRunAllTypes(t *testing.T) {
	for _, typ := range []string{"synthetic", "uniform", "athlete", "medical", "nba"} {
		var out, errBuf bytes.Buffer
		if err := run([]string{"-type", typ, "-n", "30", "-outliers", "2"}, &out, &errBuf); err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: empty output", typ)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-type", "bogus"}, &out, &errBuf); err == nil {
		t.Fatal("bogus type accepted")
	}
	if err := run([]string{"-type", "synthetic", "-n", "1"}, &out, &errBuf); err == nil {
		t.Fatal("n=1 accepted")
	}
	if err := run([]string{"-notaflag"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag accepted")
	}
	// deterministic output for fixed seed
	var a, b bytes.Buffer
	if err := run([]string{"-n", "25", "-d", "3", "-seed", "9"}, &a, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "25", "-d", "3", "-seed", "9"}, &b, &errBuf); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different CSV")
	}
}

// TestRunSaveSnapshot: -save writes a loadable dataset-only snapshot
// with generator provenance; -save alone suppresses the CSV dump.
func TestRunSaveSnapshot(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "gen.snap")
	var out, errBuf bytes.Buffer
	err := run([]string{"-type", "synthetic", "-n", "30", "-d", "3", "-outliers", "2",
		"-seed", "11", "-save", snapPath}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("-save alone still dumped CSV to stdout (%d bytes)", out.Len())
	}
	if !strings.Contains(errBuf.String(), "wrote snapshot") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
	s, err := dataio.LoadSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "gen" || s.HasState() {
		t.Fatalf("snapshot = %+v, want dataset-only named gen", s)
	}
	if s.Provenance.Generator != "synthetic" || s.Provenance.Seed != 11 {
		t.Fatalf("provenance = %+v", s.Provenance)
	}
	if s.Dataset.N() != 30 || s.Dataset.Dim() != 3 {
		t.Fatalf("shape (%d,%d)", s.Dataset.N(), s.Dataset.Dim())
	}
	// The snapshot pins the same bytes the CSV path produces.
	csvPath := filepath.Join(dir, "gen.csv")
	var out2, errBuf2 bytes.Buffer
	if err := run([]string{"-type", "synthetic", "-n", "30", "-d", "3", "-outliers", "2",
		"-seed", "11", "-out", csvPath, "-save", filepath.Join(dir, "gen2.snap")}, &out2, &errBuf2); err != nil {
		t.Fatal(err)
	}
	csvDS, err := dataio.LoadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 3; j++ {
			if csvDS.Point(i)[j] != s.Dataset.Point(i)[j] {
				t.Fatalf("value (%d,%d) diverges between CSV and snapshot", i, j)
			}
		}
	}
}
