// Command hosgen generates the reproduction's datasets as CSV:
// synthetic clustered data with planted subspace outliers, uniform
// noise, or the pseudo-real scenarios (athlete / medical / nba).
//
// Usage:
//
//	hosgen -type synthetic -n 2000 -d 10 -outliers 5 -seed 1 \
//	       -out data.csv -truth truth.csv
//
// The truth file maps each planted outlier's row index to its true
// outlying subspace, e.g. "0,[2,7]". Generated CSVs feed hosminer
// (one-shot queries) and hosserve (the HTTP query service) directly.
// -save writes the dataset as a checksummed dataset-only snapshot
// instead (provenance pinned), loadable by hosminer -load and
// hosserve's POST /datasets/load {"file": ...}.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/snapshot"
	"repro/internal/vector"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hosgen:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: parses args, writes dataset CSV to
// stdout (or -out) and optional ground truth to -truth.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hosgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "hosgen — generate HOS-Miner datasets (synthetic / uniform / pseudo-real) as CSV.")
		fmt.Fprintln(stderr, "See also: hosminer (one-shot queries), hosbench (experiments), hosserve (HTTP query service).")
		fmt.Fprintln(stderr, "Flags:")
		fs.PrintDefaults()
	}
	var (
		typ       = fs.String("type", "synthetic", "dataset type: synthetic|uniform|athlete|medical|nba")
		n         = fs.Int("n", 1000, "number of points")
		d         = fs.Int("d", 8, "dimensionality (synthetic/uniform only)")
		outliers  = fs.Int("outliers", 5, "planted outliers / deviants")
		subDim    = fs.Int("subdim", 2, "cardinality of planted outlying subspaces (synthetic)")
		clusters  = fs.Int("clusters", 3, "number of clusters (synthetic)")
		seed      = fs.Int64("seed", 1, "random seed")
		out       = fs.String("out", "", "output CSV path (default stdout)")
		truthPath = fs.String("truth", "", "optional ground-truth CSV path")
		savePath  = fs.String("save", "", "also write a dataset-only .snap snapshot (checksummed binary with generator provenance; loadable by hosminer -load, hosserve /datasets/load)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, truth, err := generate(*typ, *n, *d, *outliers, *subDim, *clusters, *seed)
	if err != nil {
		return err
	}

	if *savePath != "" {
		name := strings.TrimSuffix(filepath.Base(*savePath), ".snap")
		snap, err := snapshot.FromDataset(name, snapshot.Provenance{
			Generator: *typ, Seed: *seed, CreatedUnix: time.Now().Unix(),
		}, ds)
		if err != nil {
			return err
		}
		if err := dataio.SaveSnapshot(*savePath, snap); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote snapshot %s (%d points x %d dims, seed %d)\n",
			*savePath, ds.N(), ds.Dim(), *seed)
		if *out == "" && *truthPath == "" {
			// -save alone: don't also dump CSV to stdout.
			return nil
		}
	}

	if *out == "" {
		if err := dataio.WriteCSV(stdout, ds, true); err != nil {
			return err
		}
	} else if err := dataio.SaveFile(*out, ds); err != nil {
		return err
	}

	if *truthPath != "" {
		f, err := os.Create(*truthPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "index,subspace")
		for _, o := range truth.Outliers {
			fmt.Fprintf(f, "%d,%q\n", o.Index, o.Subspace.String())
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *out != "" {
		fmt.Fprintf(stderr, "wrote %d points x %d dims to %s (%d planted)\n",
			ds.N(), ds.Dim(), *out, len(truth.Outliers))
	}
	return nil
}

func generate(typ string, n, d, outliers, subDim, clusters int, seed int64) (*vector.Dataset, datagen.GroundTruth, error) {
	return datagen.ByName(typ, datagen.NamedConfig{
		N: n, D: d, Planted: outliers, SubspaceDim: subDim, Clusters: clusters, Seed: seed,
	})
}
