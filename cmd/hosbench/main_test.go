package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(out.String())
	if len(lines) != len(experiments.IDs()) {
		t.Fatalf("listed %d ids, want %d", len(lines), len(experiments.IDs()))
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "T1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T1") || !strings.Contains(out.String(), "DSF") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(errBuf.String(), "[T1] done") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
}

func TestRunShardExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "SH", "-shards", "1,2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "SH") || !strings.Contains(s, "speedup_vs_1") {
		t.Fatalf("output:\n%s", s)
	}
	// Exactly the two requested shard rows.
	if !strings.Contains(s, "\n1 ") || !strings.Contains(s, "\n2 ") || strings.Contains(s, "\n4 ") {
		t.Fatalf("-shards 1,2 not honoured:\n%s", s)
	}
	for _, bad := range []string{"0", "x", "1,,2"} {
		if err := run([]string{"-exp", "SH", "-shards", bad}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Fatalf("-shards %q accepted", bad)
		}
	}
}

func TestRunWritesCSVAndMarkdown(t *testing.T) {
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "csv")
	mdPath := filepath.Join(dir, "report.md")
	var out, errBuf bytes.Buffer
	err := run([]string{"-exp", "T1,F5", "-csv", csvDir, "-md", mdPath}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"T1.csv", "F5.csv"} {
		if _, err := os.Stat(filepath.Join(csvDir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### T1") || !strings.Contains(string(md), "### F5") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-scale", "bogus"}, &out, &errBuf); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-exp", "ZZ"}, &out, &errBuf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-notaflag"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
