package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/snapshot"
)

// writeFixture generates a small planted dataset CSV and returns its
// path.
func writeFixture(t *testing.T) string {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 120, D: 4, NumOutliers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := dataio.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueryByIndex(t *testing.T) {
	path := writeFixture(t)
	var out, errBuf bytes.Buffer
	err := run([]string{"-data", path, "-k", "4", "-tq", "0.95", "-index", "0", "-all"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"minimal outlying subspaces", "search cost", "full outlying set"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunQueryByPoint(t *testing.T) {
	path := writeFixture(t)
	var out, errBuf bytes.Buffer
	err := run([]string{"-data", path, "-k", "4", "-t", "5", "-point", "99,0,0,0"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[0]") {
		t.Fatalf("expected dim-0 outlier:\n%s", out.String())
	}
}

func TestRunInlierPoint(t *testing.T) {
	path := writeFixture(t)
	var out, errBuf bytes.Buffer
	// Query an inlier row with a very high absolute threshold.
	err := run([]string{"-data", path, "-k", "4", "-t", "1e12", "-index", "50"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "not an outlier in any subspace") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunScan(t *testing.T) {
	path := writeFixture(t)
	var out, errBuf bytes.Buffer
	err := run([]string{"-data", path, "-k", "4", "-tq", "0.97", "-scan", "-top", "3"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "top") || !strings.Contains(out.String(), "OD=") {
		t.Fatalf("scan output:\n%s", out.String())
	}
}

// TestRunScanProgress: -progress must draw the live stderr display up
// to 100% without changing the scan's stdout answer.
func TestRunScanProgress(t *testing.T) {
	path := writeFixture(t)
	var plain, plainErr bytes.Buffer
	if err := run([]string{"-data", path, "-k", "4", "-tq", "0.97", "-scan", "-top", "3"}, &plain, &plainErr); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	err := run([]string{"-data", path, "-k", "4", "-tq", "0.97", "-scan", "-top", "3",
		"-progress", "-scan-workers", "2"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != plain.String() {
		t.Fatalf("progress display changed the answer:\n%s\nvs\n%s", out.String(), plain.String())
	}
	se := errBuf.String()
	if !strings.Contains(se, "scanning:") || !strings.Contains(se, "100% (120/120 points)") {
		t.Fatalf("stderr missing progress display:\n%q", se)
	}
	if plainErr.Len() != 0 {
		t.Fatalf("progress printed without -progress:\n%q", plainErr.String())
	}
}

func TestRunNormalizeAndBackends(t *testing.T) {
	path := writeFixture(t)
	for _, backend := range []string{"linear", "xtree", "auto"} {
		var out, errBuf bytes.Buffer
		err := run([]string{"-data", path, "-k", "4", "-tq", "0.95",
			"-index", "0", "-normalize", "-backend", backend}, &out, &errBuf)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
	}
	for _, policy := range []string{"bottomup", "topdown", "random"} {
		var out, errBuf bytes.Buffer
		err := run([]string{"-data", path, "-k", "4", "-tq", "0.95",
			"-index", "0", "-policy", policy}, &out, &errBuf)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
	}
}

func TestRunSharded(t *testing.T) {
	path := writeFixture(t)
	// The sharded run must print the topology and answer exactly like
	// the unsharded one.
	var ref bytes.Buffer
	if err := run([]string{"-data", path, "-k", "4", "-tq", "0.95", "-index", "0"}, &ref, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"roundrobin", "hash"} {
		var out, errBuf bytes.Buffer
		err := run([]string{"-data", path, "-k", "4", "-tq", "0.95",
			"-index", "0", "-shards", "3", "-partitioner", part}, &out, &errBuf)
		if err != nil {
			t.Fatalf("%s: %v", part, err)
		}
		if !strings.Contains(out.String(), "sharding: 3 shards ("+part) {
			t.Fatalf("%s: missing topology line:\n%s", part, out.String())
		}
		// Everything after the sharding line must match the reference
		// output after its header line.
		refLines := strings.SplitN(ref.String(), "\n", 2)
		gotLines := strings.SplitN(out.String(), "\n", 3)
		if gotLines[2] != refLines[1] {
			t.Fatalf("%s: sharded answer diverged:\n%s\nvs\n%s", part, gotLines[2], refLines[1])
		}
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-data", path, "-k", "4", "-tq", "0.95",
		"-index", "0", "-shards", "2", "-partitioner", "zig"}, &out, &errBuf); err == nil {
		t.Fatal("bad -partitioner accepted")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFixture(t)
	var out, errBuf bytes.Buffer
	cases := [][]string{
		{},                            // no -data
		{"-data", "/nonexistent.csv"}, // missing file
		{"-data", path},               // no query
		{"-data", path, "-index", "0", "-point", "1,2,3,4"}, // both
		{"-data", path, "-index", "0"},                      // no threshold
		{"-data", path, "-t", "1", "-point", "1,2"},         // wrong dim
		{"-data", path, "-t", "1", "-point", "a,b,c,d"},     // non-numeric
		{"-data", path, "-t", "1", "-backend", "bogus", "-index", "0"},
		{"-data", path, "-t", "1", "-policy", "bogus", "-index", "0"},
	}
	for i, args := range cases {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("case %d accepted: %v", i, args)
		}
	}
}

func TestRunStateSaveAndLoad(t *testing.T) {
	path := writeFixture(t)
	statePath := filepath.Join(t.TempDir(), "state.json")
	var out1, errBuf bytes.Buffer
	err := run([]string{"-data", path, "-k", "4", "-tq", "0.95", "-samples", "8",
		"-index", "0", "-save-state", statePath}, &out1, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "saved state") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
	// Re-run loading the state (no threshold flags needed).
	var out2, errBuf2 bytes.Buffer
	err = run([]string{"-data", path, "-k", "4", "-index", "0",
		"-load-state", statePath}, &out2, &errBuf2)
	if err != nil {
		t.Fatal(err)
	}
	// Identical answers: both outputs list the same minimal subspaces.
	pick := func(s string) string {
		idx := strings.Index(s, "minimal outlying")
		if idx < 0 {
			t.Fatalf("no results in output:\n%s", s)
		}
		return s[idx:]
	}
	if pick(out1.String()) != pick(out2.String()) {
		t.Fatalf("state round trip changed answers:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	// Loading a state with a mismatched K must fail.
	var out3, errBuf3 bytes.Buffer
	if err := run([]string{"-data", path, "-k", "3", "-index", "0",
		"-load-state", statePath}, &out3, &errBuf3); err == nil {
		t.Fatal("mismatched K accepted")
	}
}

func TestRunBatch(t *testing.T) {
	path := writeFixture(t)
	var out, errBuf bytes.Buffer
	// Index 0 is a planted outlier; duplicate it so the shared cache
	// has something to share, and include an out-of-range item to see
	// per-item error reporting.
	err := run([]string{"-data", path, "-k", "4", "-tq", "0.95", "-batch", "0, 5, 0, 999"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"#0", "outlying in", "error", "batch: 3 ok, 1 failed", "OD cache:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "hits") {
		t.Fatalf("no cache accounting in output:\n%s", s)
	}
}

func TestRunBatchBadIndex(t *testing.T) {
	path := writeFixture(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-data", path, "-k", "4", "-tq", "0.95", "-batch", "0,x"}, &out, &errBuf); err == nil {
		t.Fatal("malformed -batch accepted")
	}
}

// TestRunSnapshotSaveAndLoad: -save captures a full snapshot, -load
// restores it (no -t/-tq needed) and answers identically; conflicting
// flags and dataset-only snapshots behave as documented.
func TestRunSnapshotSaveAndLoad(t *testing.T) {
	path := writeFixture(t)
	snapPath := filepath.Join(t.TempDir(), "mined.snap")
	var out1, errBuf bytes.Buffer
	err := run([]string{"-data", path, "-k", "4", "-tq", "0.95", "-samples", "8",
		"-backend", "xtree", "-index", "0", "-save", snapPath}, &out1, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "saved snapshot") {
		t.Fatalf("stderr: %s", errBuf.String())
	}

	// Warm load: no threshold flags, no -data; identical stdout.
	var out2, errBuf2 bytes.Buffer
	if err := run([]string{"-load", snapPath, "-index", "0"}, &out2, &errBuf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf2.String(), "restored snapshot") {
		t.Fatalf("stderr: %s", errBuf2.String())
	}
	// Identical answers; the learning-stats line is legitimately absent
	// on the warm path (learning never re-runs), so compare from the
	// results onward.
	pick := func(s string) string {
		idx := strings.Index(s, "minimal outlying")
		if idx < 0 {
			t.Fatalf("no results in output:\n%s", s)
		}
		return s[idx:]
	}
	if pick(out1.String()) != pick(out2.String()) {
		t.Fatalf("snapshot round trip changed answers:\n%s\nvs\n%s", out1.String(), out2.String())
	}

	// Conflicts.
	for _, extra := range [][]string{{"-tq", "0.9"}, {"-t", "5"}, {"-samples", "4"}, {"-normalize"}, {"-data", path}} {
		args := append([]string{"-load", snapPath, "-index", "0"}, extra...)
		var o, e bytes.Buffer
		if err := run(args, &o, &e); err == nil {
			t.Fatalf("flags %v accepted alongside -load of a full snapshot", extra)
		}
	}
	// Missing and corrupt files fail cleanly.
	var o, e bytes.Buffer
	if err := run([]string{"-load", filepath.Join(t.TempDir(), "no.snap"), "-index", "0"}, &o, &e); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

// TestRunDatasetOnlySnapshot: a hosgen-style dataset-only snapshot
// loads like a CSV — miner flags apply — and answers exactly as the
// same data loaded from CSV.
func TestRunDatasetOnlySnapshot(t *testing.T) {
	csvPath := writeFixture(t)
	ds, err := dataio.LoadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := snapshot.FromDataset("fixture", snapshot.Provenance{Source: csvPath}, ds)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "fixture.snap")
	if err := dataio.SaveSnapshot(snapPath, s); err != nil {
		t.Fatal(err)
	}
	var fromCSV, fromSnap, errBuf bytes.Buffer
	if err := run([]string{"-data", csvPath, "-k", "4", "-tq", "0.95", "-index", "2"}, &fromCSV, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load", snapPath, "-k", "4", "-tq", "0.95", "-index", "2"}, &fromSnap, &errBuf); err != nil {
		t.Fatal(err)
	}
	if fromCSV.String() != fromSnap.String() {
		t.Fatalf("dataset-only snapshot answers differently:\n%s\nvs\n%s", fromCSV.String(), fromSnap.String())
	}
}
