// Command hosminer is the interactive front-end of the reproduction —
// the "prototype" of the paper's demo plan, part 4. It loads a CSV
// dataset, preprocesses (X-tree indexing + sample-based learning) and
// answers outlying-subspace queries for dataset rows or external
// points, or scans the entire dataset for points with non-empty
// answer sets.
//
// Usage:
//
//	hosminer -data data.csv -k 5 -tq 0.95 -samples 20 -index 0
//	hosminer -data data.csv -k 5 -t 12.5 -point "1.0,2.0,0.3"
//	hosminer -data data.csv -k 5 -tq 0.95 -batch "0,3,17,3"
//	hosminer -data data.csv -k 5 -tq 0.99 -scan -top 10 -progress
//	hosminer -data data.csv -k 5 -tq 0.95 -save mined.snap
//	hosminer -load mined.snap -index 0   # warm: no rebuild, no relearning
//
// Output lists the minimal outlying subspaces with resolved column
// names, plus search-cost accounting. For a long-lived process that
// preprocesses once and answers many concurrent queries over HTTP,
// use hosserve instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/shard"
	"repro/internal/snapshot"
	"repro/internal/subspace"
	"repro/internal/vector"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hosminer:", err)
		os.Exit(1)
	}
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hosminer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "hosminer — one-shot outlying-subspace queries and scans over a CSV dataset.")
		fmt.Fprintln(stderr, "See also: hosgen (datasets), hosbench (experiments), hosserve (HTTP query service).")
		fmt.Fprintln(stderr, "Flags:")
		fs.PrintDefaults()
	}
	var (
		dataPath  = fs.String("data", "", "CSV dataset path (required)")
		k         = fs.Int("k", 5, "neighbourhood size of the OD measure")
		tAbs      = fs.Float64("t", 0, "absolute OD threshold T (use -t or -tq)")
		tq        = fs.Float64("tq", 0, "threshold as a quantile of full-space ODs, e.g. 0.95")
		samples   = fs.Int("samples", 0, "sample size for the learning phase (0 = uniform priors, recommended)")
		seed      = fs.Int64("seed", 1, "random seed")
		index     = fs.Int("index", -1, "query dataset row by index")
		pointStr  = fs.String("point", "", "query an external point: comma-separated values")
		scan      = fs.Bool("scan", false, "scan every dataset point for outlying subspaces")
		batch     = fs.String("batch", "", "query many dataset rows as one batch: comma-separated indices (duplicates share OD work)")
		batchW    = fs.Int("batch-workers", 0, "with -batch: evaluation fan-out (0 = GOMAXPROCS)")
		top       = fs.Int("top", 10, "with -scan: report the top-N points by severity")
		scanW     = fs.Int("scan-workers", 0, "with -scan: worker fan-out (0 = GOMAXPROCS)")
		progress  = fs.Bool("progress", false, "with -scan: live points-evaluated progress on stderr")
		backend   = fs.String("backend", "auto", "k-NN backend: auto|linear|xtree")
		shards    = fs.Int("shards", 0, "partition the dataset across N scatter-gather shards (0 = single index)")
		partition = fs.String("partitioner", "roundrobin", "with -shards: row assignment, roundrobin|hash")
		policy    = fs.String("policy", "tsf", "search order: tsf|bottomup|topdown|random")
		normalize = fs.Bool("normalize", false, "min-max normalize columns before mining")
		showAll   = fs.Bool("all", false, "also print the full (unfiltered) outlying set size")
		maxPrint  = fs.Int("max-print", 25, "max minimal subspaces to print")
		loadState = fs.String("load-state", "", "load preprocessed state (threshold+priors) from this JSON file, skipping learning")
		saveState = fs.String("save-state", "", "after preprocessing, save state to this JSON file")
		loadSnap  = fs.String("load", "", "load a .snap snapshot instead of -data: a full snapshot restores dataset+config+state+index wholesale; a dataset-only snapshot supplies just the data")
		saveSnap  = fs.String("save", "", "after preprocessing, save a full snapshot (dataset+config+state+index) to this .snap file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m *core.Miner
	var ds *vector.Dataset
	var cfg core.Config
	switch {
	case *dataPath != "" && *loadSnap != "":
		return fmt.Errorf("use either -data or -load, not both")
	case *dataPath == "" && *loadSnap == "":
		return fmt.Errorf("-data (CSV) or -load (snapshot) is required")
	case *loadSnap != "":
		snap, err := dataio.LoadSnapshot(*loadSnap)
		if err != nil {
			return err
		}
		if snap.HasState() {
			// Full snapshot: it fixes threshold, priors, config and index;
			// flags that would re-derive them are conflicts, the rest are
			// superseded by the snapshot's own configuration.
			if *tAbs != 0 || *tq != 0 || *samples != 0 {
				return fmt.Errorf("-load of a full snapshot conflicts with -t/-tq/-samples (the snapshot supplies threshold and priors)")
			}
			if *normalize {
				return fmt.Errorf("-load conflicts with -normalize (the snapshot holds the dataset exactly as captured)")
			}
			if *loadState != "" {
				return fmt.Errorf("-load conflicts with -load-state (the snapshot already carries the state)")
			}
			if m, err = snap.Restore(); err != nil {
				return err
			}
			ds, cfg = snap.Dataset, snap.Config
			fmt.Fprintf(stderr, "restored snapshot %s (no index build, no learning)\n", *loadSnap)
		} else {
			// Dataset-only snapshot: the data rides in, flags configure
			// the miner exactly as with -data.
			ds = snap.Dataset
		}
	default:
		var err error
		if ds, err = dataio.LoadFile(*dataPath); err != nil {
			return err
		}
	}
	var normRanges []snapshot.ColumnRange
	if m == nil {
		if *normalize {
			norm, stats := ds.MinMaxNormalize()
			if ds.Columns() != nil {
				if err := norm.SetColumns(ds.Columns()); err != nil {
					return err
				}
			}
			ds = norm
			// Keep the raw ranges: a -save of this run must let a
			// restoring server rebuild the ad-hoc-point transform.
			normRanges = make([]snapshot.ColumnRange, len(stats))
			for j, st := range stats {
				normRanges[j] = snapshot.ColumnRange{Min: st.Min, Max: st.Max}
			}
		}

		var err error
		cfg = core.Config{K: *k, T: *tAbs, TQuantile: *tq, SampleSize: *samples, Seed: *seed}
		if *loadState != "" && cfg.T == 0 && cfg.TQuantile == 0 {
			// The loaded state supplies the real threshold; satisfy config
			// validation with a placeholder.
			cfg.T = 1
		}
		cfg.ClampSampleSize(ds.N())
		cfg.Backend, err = core.ParseBackend(*backend)
		if err != nil {
			return err
		}
		cfg.Policy, err = core.ParsePolicy(*policy)
		if err != nil {
			return err
		}
		cfg.Shards = *shards
		cfg.Partitioner, err = shard.ParsePartitioner(*partition)
		if err != nil {
			return err
		}

		if m, err = core.NewMiner(ds, cfg); err != nil {
			return err
		}
		if *loadState != "" {
			if err := m.LoadStateFile(*loadState); err != nil {
				return err
			}
		} else if err := m.Preprocess(); err != nil {
			return err
		}
	}
	if *saveState != "" {
		if err := m.SaveStateFile(*saveState); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved state to %s\n", *saveState)
	}
	if *saveSnap != "" {
		name := strings.TrimSuffix(filepath.Base(*saveSnap), ".snap")
		prov := snapshot.Provenance{
			Source: *dataPath, Seed: *seed, Normalized: *normalize,
			CreatedUnix: time.Now().Unix(),
		}
		if *loadSnap != "" {
			prov.Source = *loadSnap
		}
		snap, err := snapshot.Capture(name, prov, m)
		if err != nil {
			return err
		}
		snap.NormStats = normRanges
		if err := dataio.SaveSnapshot(*saveSnap, snap); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved snapshot to %s\n", *saveSnap)
	}
	fmt.Fprintf(stdout, "dataset: %d points x %d dims; T = %.4g; backend = %s\n",
		ds.N(), ds.Dim(), m.Threshold(), cfg.Backend)
	if e := m.ShardEngine(); e != nil {
		fmt.Fprintf(stdout, "sharding: %d shards (%s partitioner), sizes %v\n",
			e.NumShards(), e.Config().Partitioner, e.ShardSizes())
	}
	if ls := m.LearnStats(); ls.Samples > 0 {
		fmt.Fprintf(stdout, "learning: %d samples, %d OD evaluations\n", ls.Samples, ls.ODEvaluations)
	}

	if *scan {
		return runScan(stdout, stderr, ds, m, *top, *scanW, *progress)
	}
	if *batch != "" {
		return runBatch(stdout, ds, m, *batch, *batchW)
	}

	var res *core.QueryResult
	var err error
	switch {
	case *index >= 0 && *pointStr != "":
		return fmt.Errorf("use either -index or -point, not both")
	case *index >= 0:
		res, err = m.OutlyingSubspacesOfPoint(*index)
	case *pointStr != "":
		point, perr := parsePoint(*pointStr, ds.Dim())
		if perr != nil {
			return perr
		}
		res, err = m.OutlyingSubspaces(point)
	default:
		return fmt.Errorf("provide a query: -index N, -point \"v1,v2,...\", -batch \"i,j,...\", or -scan")
	}
	if err != nil {
		return err
	}

	printResult(stdout, ds, res, *showAll, *maxPrint)
	return nil
}

func runScan(w, errw io.Writer, ds *vector.Dataset, m *core.Miner, top, workers int, progress bool) error {
	opts := core.ScanOptions{SortBySeverity: true, MaxResults: top}
	if progress {
		opts.OnProgress = progressPrinter(errw)
	}
	// ScanAllParallelContext answers identically to ScanAll at any
	// worker count; the fan-out only changes wall time.
	hits, err := m.ScanAllParallelContext(context.Background(), opts, workers)
	if progress {
		// Terminate the \r display before anything else writes to
		// stderr — including the error report below.
		fmt.Fprintln(errw)
	}
	if err != nil {
		return err
	}
	if len(hits) == 0 {
		fmt.Fprintln(w, "no point is an outlier in any subspace at this threshold")
		return nil
	}
	fmt.Fprintf(w, "top %d outlying points (by full-space OD):\n", len(hits))
	for _, h := range hits {
		var subs []string
		for i, s := range h.Minimal {
			if i >= 4 {
				subs = append(subs, fmt.Sprintf("+%d more", len(h.Minimal)-4))
				break
			}
			subs = append(subs, describeSubspace(ds, s))
		}
		fmt.Fprintf(w, "  #%-5d OD=%-9.4g outlying in %d subspaces; minimal: %s\n",
			h.Index, h.FullSpaceOD, h.OutlyingCount, strings.Join(subs, "; "))
	}
	return nil
}

// progressPrinter renders a scan's points-evaluated progress as an
// in-place stderr line, printing each whole percent at most once.
// Scan workers report concurrently and may deliver out of order; the
// mutex keeps the display monotonic and the writes unscrambled, and
// is cheap next to the lattice sweep each report represents.
func progressPrinter(errw io.Writer) func(done, total int) {
	var mu sync.Mutex
	last := -1
	return func(done, total int) {
		pct := 0
		if total > 0 {
			pct = done * 100 / total
		}
		mu.Lock()
		if pct > last {
			last = pct
			fmt.Fprintf(errw, "\rscanning: %3d%% (%d/%d points)", pct, done, total)
		}
		mu.Unlock()
	}
}

// runBatch evaluates a comma-separated index list through the batch
// engine: one shared per-batch OD cache, so repeated indices are
// answered from each other's work.
func runBatch(w io.Writer, ds *vector.Dataset, m *core.Miner, spec string, workers int) error {
	parts := strings.Split(spec, ",")
	indices := make([]int, 0, len(parts))
	queries := make([]core.BatchQuery, 0, len(parts))
	for _, p := range parts {
		idx, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return fmt.Errorf("-batch index %q: %w", p, err)
		}
		indices = append(indices, idx)
		queries = append(queries, core.BatchIndex(idx))
	}
	res, err := m.QueryBatch(context.Background(), queries, core.BatchOptions{Workers: workers})
	if err != nil {
		return err
	}
	for i, item := range res.Items {
		if item.Err != nil {
			fmt.Fprintf(w, "#%-5d error: %v\n", indices[i], item.Err)
			continue
		}
		r := item.Result
		if !r.IsOutlierAnywhere {
			fmt.Fprintf(w, "#%-5d not an outlier in any subspace\n", indices[i])
			continue
		}
		var subs []string
		for j, s := range r.Minimal {
			if j >= 4 {
				subs = append(subs, fmt.Sprintf("+%d more", len(r.Minimal)-4))
				break
			}
			subs = append(subs, describeSubspace(ds, s))
		}
		fmt.Fprintf(w, "#%-5d outlying in %d subspaces; minimal: %s\n",
			indices[i], len(r.Outlying), strings.Join(subs, "; "))
	}
	fmt.Fprintf(w, "batch: %d ok, %d failed; OD cache: %d hits, %d misses (%d entries)\n",
		res.Succeeded, res.Failed, res.Cache.Hits, res.Cache.Misses, res.Cache.Entries)
	return nil
}

func parsePoint(s string, d int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("point has %d values, dataset dimensionality is %d", len(parts), d)
	}
	out := make([]float64, d)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

func describeSubspace(ds *vector.Dataset, s subspace.Mask) string {
	names := make([]string, 0, s.Card())
	s.EachDim(func(dim int) { names = append(names, ds.ColumnName(dim)) })
	return fmt.Sprintf("%s{%s}", s.String(), strings.Join(names, ","))
}

func printResult(w io.Writer, ds *vector.Dataset, res *core.QueryResult, showAll bool, maxPrint int) {
	if !res.IsOutlierAnywhere {
		fmt.Fprintln(w, "the point is not an outlier in any subspace")
		return
	}
	fmt.Fprintf(w, "minimal outlying subspaces (%d):\n", len(res.Minimal))
	for i, s := range res.Minimal {
		if i >= maxPrint {
			fmt.Fprintf(w, "  ... and %d more\n", len(res.Minimal)-maxPrint)
			break
		}
		fmt.Fprintf(w, "  %s\n", describeSubspace(ds, s))
	}
	if showAll {
		fmt.Fprintf(w, "full outlying set: %d subspaces (of %d in the lattice)\n",
			len(res.Outlying), res.Counters.Total)
	}
	fmt.Fprintf(w, "search cost: %d OD evaluations; %d settled by upward pruning, %d by downward pruning\n",
		res.Counters.Evaluations, res.Counters.ImpliedUp, res.Counters.ImpliedDown)
}
