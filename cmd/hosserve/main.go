// Command hosserve exposes HOS-Miner as a long-lived HTTP/JSON
// service: load a dataset once, preprocess once (X-tree indexing,
// threshold resolution, §3.2 learning — or import a saved state), and
// answer concurrent outlying-subspace queries until shut down.
//
// Usage:
//
//	hosserve -data data.csv -k 5 -tq 0.95 -addr :8080
//	hosserve -gen synthetic -n 2000 -d 8 -k 5 -tq 0.95
//	hosserve -gen synthetic -n 20000 -d 8 -k 5 -tq 0.95 -shards 4
//	hosserve -gen nba -n 500 -k 6 -tq 0.97 -load-state state.json
//	hosserve -gen synthetic -n 20000 -d 8 -k 5 -tq 0.95 -data-dir ./snaps
//	hosserve -data-dir ./snaps   # warm restart: default.snap + background warm start
//
// The startup dataset becomes the registry's "default" entry; more
// datasets can be loaded and evicted at runtime. Endpoints (see
// README.md for a curl transcript):
//
//	POST /query          {"index": 3} or {"point": [..]}, optional "dataset"
//	POST /scan           {"max_results": 10, ...}, optional "dataset"
//	POST /jobs/scan      the same body, run asynchronously → job id
//	GET  /jobs/{id}      poll job status/progress; DELETE cancels
//	POST /batch          {"items": [...]}, optional "dataset"
//	GET  /datasets       registry listing with shard topology
//	POST /datasets/load  generate (or load from a -data-dir snapshot)
//	                     + preprocess + register a dataset
//	POST /datasets/evict drop a loaded dataset
//	POST /datasets/{name}/save
//	                     persist an entry to <data-dir>/<name>.snap
//	POST /datasets/{name}/append
//	                     stream rows into a serving dataset (new epoch)
//	DELETE /datasets/{name}/rows
//	                     delete rows by stable-ID range or keep_last
//	GET  /datasets/{name}/retention
//	PUT  /datasets/{name}/retention
//	                     read / set the per-dataset retention policy
//	                     ({"max_age": "24h", "max_rows": 100000})
//	POST /datasets/{name}/compact
//	                     fold the dataset's WAL into a fresh snapshot
//	GET  /state          export preprocessed state (?dataset=name)
//	GET  /healthz        liveness + default dataset summary
//	GET  /stats          query counts, cache hits, latency percentiles,
//	                     per-dataset and per-shard counters
//
// The process drains in-flight requests and exits cleanly on SIGINT /
// SIGTERM. See also the batch front-ends: hosminer (one-shot queries),
// hosgen (dataset generation) and hosbench (experiment tables).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/snapshot"
	"repro/internal/vector"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hosserve:", err)
		os.Exit(1)
	}
}

// cliConfig is everything run parses out of the flags.
type cliConfig struct {
	addr      string
	pprofAddr string

	dataPath  string
	gen       string
	n, d      int
	outliers  int
	deviants  int
	normalize bool

	miner     core.Config
	loadState string
	saveState string
	dataDir   string
	debug     bool
	jobDrain  time.Duration

	// explicit records which flags the operator actually set (not
	// defaults), so the snapshot-restore path can reject flags it
	// would otherwise silently ignore.
	explicit map[string]bool

	srv server.Options
}

// run is the testable entry point: parse flags, build the service,
// then serve until the context delivered by SIGINT/SIGTERM ends.
func run(args []string, stdout, stderr io.Writer) error {
	cc, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	srv, ds, m, err := setup(cc, stderr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "dataset: %d points x %d dims; T = %.4g; backend = %s\n",
		ds.N(), ds.Dim(), m.Threshold(), m.Config().Backend)
	if e := m.ShardEngine(); e != nil {
		fmt.Fprintf(stdout, "sharding: %d shards (%s partitioner), sizes %v\n",
			e.NumShards(), e.Config().Partitioner, e.ShardSizes())
	}
	if cc.saveState != "" {
		if err := m.SaveStateFile(cc.saveState); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved state to %s\n", cc.saveState)
	}

	if cc.pprofAddr != "" {
		stopPprof, err := startPprof(cc.pprofAddr, stdout)
		if err != nil {
			return err
		}
		defer stopPprof()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, cc.addr, srv, cc.jobDrain, stdout)
}

// pprofMux is the debug surface served on -pprof-addr: the standard
// net/http/pprof handlers on a mux of their own, so profiling never
// rides on the public API listener and can be bound to localhost
// while the service listens on all interfaces.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startPprof serves the pprof mux on addr until the returned stop
// function is called. A listen failure is a startup error — an
// operator who asked for profiling must not silently run without it.
func startPprof(addr string, stdout io.Writer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	s := &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.Serve(ln) }()
	fmt.Fprintf(stdout, "pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { _ = s.Close() }, nil
}

// parseFlags builds a cliConfig from the argument list.
func parseFlags(args []string, stderr io.Writer) (*cliConfig, error) {
	fs := flag.NewFlagSet("hosserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "hosserve — serve concurrent outlying-subspace queries over HTTP/JSON.")
		fmt.Fprintln(stderr, "Endpoints: POST /query, /batch, /scan, /jobs/scan (async), /datasets/load, /datasets/evict; GET /jobs, /jobs/{id}, /datasets, /state, /healthz, /stats (see README.md).")
		fmt.Fprintln(stderr, "See also: hosminer (one-shot queries), hosgen (datasets), hosbench (experiments).")
		fmt.Fprintln(stderr, "Flags:")
		fs.PrintDefaults()
	}
	var cc cliConfig
	var backend, policy, partitioner, walSync string
	fs.StringVar(&cc.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cc.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	fs.StringVar(&cc.dataPath, "data", "", "CSV dataset path (use -data or -gen)")
	fs.StringVar(&cc.gen, "gen", "", "generate the dataset instead: synthetic|uniform|athlete|medical|nba")
	fs.IntVar(&cc.n, "n", 1000, "with -gen: number of points")
	fs.IntVar(&cc.d, "d", 8, "with -gen synthetic|uniform: dimensionality")
	fs.IntVar(&cc.outliers, "outliers", 5, "with -gen synthetic: planted outliers")
	fs.IntVar(&cc.deviants, "deviants", 5, "with -gen athlete|medical|nba: planted deviants")
	fs.BoolVar(&cc.normalize, "normalize", false, "min-max normalize columns before mining")
	fs.IntVar(&cc.miner.K, "k", 5, "neighbourhood size of the OD measure")
	fs.Float64Var(&cc.miner.T, "t", 0, "absolute OD threshold T (use -t or -tq)")
	fs.Float64Var(&cc.miner.TQuantile, "tq", 0, "threshold as a quantile of full-space ODs, e.g. 0.95")
	fs.IntVar(&cc.miner.SampleSize, "samples", 0, "sample size for the learning phase (0 = uniform priors)")
	fs.Int64Var(&cc.miner.Seed, "seed", 1, "random seed (generation and mining)")
	fs.StringVar(&backend, "backend", "auto", "k-NN backend: auto|linear|xtree")
	fs.IntVar(&cc.miner.Shards, "shards", 0, "partition the dataset across N scatter-gather shards (0 = single index)")
	fs.StringVar(&partitioner, "partitioner", "roundrobin", "with -shards: row assignment, roundrobin|hash")
	fs.StringVar(&policy, "policy", "tsf", "search order: tsf|bottomup|topdown|random")
	fs.StringVar(&cc.loadState, "load-state", "", "import preprocessed state (threshold+priors) from this JSON file, skipping learning")
	fs.StringVar(&cc.saveState, "save-state", "", "after preprocessing, save state to this JSON file")
	fs.StringVar(&cc.dataDir, "data-dir", "", "snapshot directory: warm-start every *.snap in it at boot (background jobs), enable POST /datasets/{name}/save and file loads; with no -data/-gen, serve default.snap from it as the default dataset")
	fs.BoolVar(&cc.srv.WAL, "wal", true, "with -data-dir: write-ahead log live mutations (POST /datasets/{name}/append, DELETE .../rows) beside each snapshot and replay the log on restart")
	fs.StringVar(&walSync, "wal-sync", "batch", "WAL fsync policy: batch (one fsync per coalesced append batch), always (fsync every record; durable through power loss), or interval=<duration> (time-coalesced; may lose acknowledged mutations inside the window)")
	fs.Int64Var(&cc.srv.WALCompactBytes, "wal-compact-bytes", 0, "auto-compact a dataset's WAL into a fresh snapshot once it exceeds this size (default 4 MiB, negative disables)")
	fs.DurationVar(&cc.srv.RetentionAge, "retention-age", 0, "expire dataset rows older than this via background sweeps (0 disables; override per dataset with PUT /datasets/{name}/retention)")
	fs.IntVar(&cc.srv.RetentionRows, "retention-rows", 0, "cap each dataset's row count, expiring the oldest rows (0 disables; same per-dataset override)")
	fs.DurationVar(&cc.srv.RetentionInterval, "retention-interval", 0, "cadence of the background retention sweeper (default 30s)")
	fs.IntVar(&cc.srv.CacheSize, "cache", 0, "LRU result-cache entries (0 = default 1024, negative disables)")
	fs.DurationVar(&cc.srv.QueryTimeout, "query-timeout", 0, "per-query deadline (default 10s)")
	fs.DurationVar(&cc.srv.ScanTimeout, "scan-timeout", 0, "per-scan deadline (default 2m)")
	fs.Int64Var(&cc.srv.MaxBodyBytes, "max-body", 0, "request body limit in bytes (default 1 MiB)")
	fs.IntVar(&cc.srv.ScanWorkers, "scan-workers", 0, "scan worker pool size (default GOMAXPROCS)")
	fs.IntVar(&cc.srv.MaxScanResults, "max-scan-results", 0, "cap on hits per /scan (default 1000)")
	fs.IntVar(&cc.srv.MaxConcurrentQueries, "max-queries", 0, "cap on concurrently computing queries (default 4x GOMAXPROCS)")
	fs.IntVar(&cc.srv.MaxDatasets, "max-datasets", 0, "cap on registry size incl. the startup dataset (default 8)")
	fs.IntVar(&cc.srv.JobQueueDepth, "job-queue", 0, "async scan-job queue depth; a full queue answers 429 + Retry-After (default 8)")
	fs.IntVar(&cc.srv.JobWorkers, "job-workers", 0, "async scan-job worker pool size (default 1)")
	fs.DurationVar(&cc.srv.JobResultTTL, "job-ttl", 0, "retention of finished async job results (default 15m)")
	fs.DurationVar(&cc.srv.JobTimeout, "job-timeout", 0, "runaway backstop per async job (default 30m, negative disables)")
	fs.DurationVar(&cc.jobDrain, "job-drain", 30*time.Second, "on shutdown, how long queued/running async jobs may finish before being cancelled")
	fs.DurationVar(&cc.srv.Overload.Window, "breaker-window", 0, "per-dataset circuit-breaker outcome window (default 10s)")
	fs.DurationVar(&cc.srv.Overload.CoolDown, "breaker-cooldown", 0, "how long an open breaker rejects before half-open probing (default 5s)")
	fs.Float64Var(&cc.srv.Overload.FailureRatio, "breaker-ratio", 0, "error+timeout ratio that trips a dataset's breaker (default 0.5)")
	fs.IntVar(&cc.srv.Overload.MinSamples, "breaker-min-samples", 0, "volume floor before a breaker may trip (default 10)")
	fs.IntVar(&cc.srv.Overload.MinLimit, "limit-min", 0, "floor of the per-dataset adaptive concurrency limit (default 1)")
	fs.IntVar(&cc.srv.Overload.MaxLimit, "limit-max", 0, "ceiling of the per-dataset adaptive concurrency limit (default: sum of the class caps)")
	fs.DurationVar(&cc.srv.Overload.TargetP99, "target-p99", 0, "query p99 the AIMD limiter defends per dataset (default query-timeout/2)")
	fs.BoolVar(&cc.debug, "debug", false, "log debug-level serving events (abandoned scans, job lifecycle)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cc.explicit = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { cc.explicit[f.Name] = true })
	var err error
	if cc.srv.WALSync, err = wal.ParseSyncPolicy(walSync); err != nil {
		return nil, err
	}
	if cc.miner.Backend, err = core.ParseBackend(backend); err != nil {
		return nil, err
	}
	if cc.miner.Policy, err = core.ParsePolicy(policy); err != nil {
		return nil, err
	}
	if cc.miner.Partitioner, err = shard.ParsePartitioner(partitioner); err != nil {
		return nil, err
	}
	return &cc, nil
}

// setup loads or generates the dataset (or restores it from a
// snapshot), builds and preprocesses the miner (or imports state),
// wraps it in a server and warm-starts any remaining snapshots in
// -data-dir; stderr receives debug-level serving events under -debug.
func setup(cc *cliConfig, stderr io.Writer) (*server.Server, *vector.Dataset, *core.Miner, error) {
	cc.srv.DataDir = cc.dataDir
	// With no dataset source but a data dir holding default.snap, the
	// default dataset itself comes back from disk: the lossless-restart
	// path, no regeneration, no re-indexing, no re-learning.
	if cc.dataPath == "" && cc.gen == "" && cc.dataDir != "" {
		if _, err := os.Stat(filepath.Join(cc.dataDir, server.DefaultDatasetName+".snap")); err == nil {
			return setupFromSnapshot(cc, stderr)
		}
	}
	ds, err := loadDataset(cc)
	if err != nil {
		return nil, nil, nil, err
	}
	cc.srv.Provenance = snapshot.Provenance{
		Generator: cc.gen, Seed: cc.miner.Seed, Source: cc.dataPath,
		Normalized: cc.normalize, CreatedUnix: time.Now().Unix(),
	}
	if cc.normalize {
		norm, stats := ds.MinMaxNormalize()
		if ds.Columns() != nil {
			if err := norm.SetColumns(ds.Columns()); err != nil {
				return nil, nil, nil, err
			}
		}
		ds = norm
		// Ad-hoc /query points arrive in raw units; rescale them the
		// same way the dataset was, or every client vector would look
		// maximally distant from the [0,1]-scaled data.
		cc.srv.PointTransform = func(p []float64) []float64 {
			out := make([]float64, len(p))
			for j, v := range p {
				if span := stats[j].Max - stats[j].Min; span > 0 {
					out[j] = (v - stats[j].Min) / span
				}
			}
			return out
		}
		// And record the raw ranges so a snapshot of this dataset can
		// rebuild the same transform after a restart.
		cc.srv.NormStats = make([]snapshot.ColumnRange, len(stats))
		for j, st := range stats {
			cc.srv.NormStats[j] = snapshot.ColumnRange{Min: st.Min, Max: st.Max}
		}
	}
	cfg := cc.miner
	if cc.loadState != "" {
		if cfg.T != 0 || cfg.TQuantile != 0 || cfg.SampleSize != 0 {
			// The loaded state supplies threshold and priors; silently
			// ignoring explicit flags would mislead the operator.
			return nil, nil, nil, fmt.Errorf("-load-state conflicts with -t/-tq/-samples (the state file supplies threshold and priors)")
		}
		// Satisfy config validation with a placeholder; ImportState
		// installs the real threshold.
		cfg.T = 1
	}
	cfg.ClampSampleSize(ds.N())
	m, err := core.NewMiner(ds, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if cc.loadState != "" {
		if err := m.LoadStateFile(cc.loadState); err != nil {
			return nil, nil, nil, err
		}
	}
	if cc.debug {
		// The injected stderr, not the process-global logger: run()'s
		// writer-injection contract is what lets tests (and multiple
		// servers in one process) capture their own debug stream.
		cc.srv.Logf = log.New(stderr, "", log.LstdFlags).Printf
	}
	srv, err := server.New(m, cc.srv) // runs Preprocess when state was not imported
	if err != nil {
		return nil, nil, nil, err
	}
	if err := warmStart(srv, cc, stderr); err != nil {
		return nil, nil, nil, err
	}
	return srv, ds, m, nil
}

// setupFromSnapshot restores the default dataset wholesale from
// <data-dir>/default.snap: dataset bytes, miner configuration,
// threshold, priors and the serialized index all come from the file,
// so flags that would re-derive any of them are conflicts.
func setupFromSnapshot(cc *cliConfig, stderr io.Writer) (*server.Server, *vector.Dataset, *core.Miner, error) {
	// Every flag the snapshot supersedes is a hard conflict when set
	// explicitly — silently ignoring an operator's -k or -shards would
	// let them believe they reconfigured a service that is in fact
	// serving the snapshot's original topology.
	for _, name := range []string{"t", "tq", "samples", "k", "seed", "shards", "backend", "policy", "partitioner",
		"n", "d", "outliers", "deviants", "normalize", "load-state"} {
		if cc.explicit[name] {
			return nil, nil, nil, fmt.Errorf("-%s conflicts with restoring from %s/default.snap (the snapshot supplies the dataset and miner configuration; use -gen/-data to build fresh instead)", name, cc.dataDir)
		}
	}
	path := filepath.Join(cc.dataDir, server.DefaultDatasetName+".snap")
	snap, err := dataio.LoadSnapshot(path)
	if err != nil {
		return nil, nil, nil, err
	}
	if !snap.HasState() {
		return nil, nil, nil, fmt.Errorf("%s is a dataset-only snapshot; serve it with -data/-gen parameters or re-save it from a running hosserve", path)
	}
	m, err := snap.Restore()
	if err != nil {
		return nil, nil, nil, err
	}
	fmt.Fprintf(stderr, "restored default dataset from %s (no regeneration)\n", path)
	cc.srv.Provenance = snap.Provenance
	// A normalized snapshot carries its raw column ranges; rebuild the
	// ad-hoc-point transform from them so raw-unit client vectors keep
	// being rescaled exactly as before the restart.
	if norm := snap.NormStats; len(norm) > 0 {
		cc.srv.NormStats = norm
		cc.srv.PointTransform = func(p []float64) []float64 {
			out := make([]float64, len(p))
			for j, v := range p {
				if j < len(norm) {
					if span := norm[j].Max - norm[j].Min; span > 0 {
						out[j] = (v - norm[j].Min) / span
					}
				}
			}
			return out
		}
	}
	if cc.debug {
		cc.srv.Logf = log.New(stderr, "", log.LstdFlags).Printf
	}
	srv, err := server.New(m, cc.srv)
	if err != nil {
		return nil, nil, nil, err
	}
	// Replay the default dataset's delta log over the restored base.
	// This runs only on this boot path: after -gen/-data the base is
	// fresh and a lingering default.wal belongs to an earlier dataset.
	// A replay problem degrades to serving the base snapshot with a
	// warning — the deltas are still on disk for a post-mortem.
	if cc.srv.WAL {
		switch n, err := srv.AttachDefaultWAL(); {
		case err != nil:
			fmt.Fprintf(stderr, "warning: default dataset WAL not replayed (serving the base snapshot): %v\n", err)
		case n > 0:
			fmt.Fprintf(stderr, "replayed %d WAL record(s) onto the default dataset\n", n)
		}
	}
	if err := warmStart(srv, cc, stderr); err != nil {
		return nil, nil, nil, err
	}
	return srv, snap.Dataset, m, nil
}

// warmStart registers the data dir's remaining snapshots as
// background jobs (no-op without -data-dir). A warm-start problem —
// an unreadable directory, a job queue too shallow for the snapshot
// count — degrades to partial warm start with a warning, never a
// failed boot: the already-registered datasets are serving and the
// rest can be loaded by hand, which beats an outage every time a
// stale file accumulates in the directory.
func warmStart(srv *server.Server, cc *cliConfig, stderr io.Writer) error {
	if cc.dataDir == "" {
		return nil
	}
	n, err := srv.WarmStart()
	if err != nil {
		fmt.Fprintf(stderr, "warning: partial warm start from %s (%d submitted): %v — load the rest via POST /datasets/load or raise -job-queue\n", cc.dataDir, n, err)
	}
	if n > 0 {
		fmt.Fprintf(stderr, "warm-starting %d snapshot(s) from %s in the background (progress: GET /jobs)\n", n, cc.dataDir)
	}
	return nil
}

func loadDataset(cc *cliConfig) (*vector.Dataset, error) {
	switch {
	case cc.dataPath != "" && cc.gen != "":
		return nil, fmt.Errorf("use either -data or -gen, not both")
	case cc.dataPath != "":
		return dataio.LoadFile(cc.dataPath)
	case cc.gen != "":
		ds, _, err := generate(cc)
		return ds, err
	default:
		return nil, fmt.Errorf("provide a dataset: -data file.csv, -gen synthetic|uniform|athlete|medical|nba, or -data-dir with a default.snap")
	}
}

func generate(cc *cliConfig) (*vector.Dataset, datagen.GroundTruth, error) {
	planted := cc.outliers
	if cc.gen != "synthetic" {
		planted = cc.deviants
	}
	return datagen.ByName(cc.gen, datagen.NamedConfig{
		N: cc.n, D: cc.d, Planted: planted, Seed: cc.miner.Seed,
	})
}

// serve listens on addr and blocks until ctx is cancelled, then
// drains in-flight requests (15s) and queued async jobs (jobDrain —
// its own budget, since the jobs this subsystem exists for run far
// longer than any HTTP drain window) before returning.
func serve(ctx context.Context, addr string, srv *server.Server, jobDrain time.Duration, stdout io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "serving on %s\n", ln.Addr())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	// Shutdown closes the listener immediately, so no new jobs can
	// arrive even if draining in-flight requests blows the budget
	// (a synchronous scan can legitimately outlive it — ScanTimeout
	// defaults to 2min); the job drain must therefore run regardless
	// of Shutdown's verdict, and on a budget of its own — sharing the
	// HTTP window would hand a drain that waited out a slow request an
	// already-expired context and cancel every job unconditionally.
	// A drain cut short by its deadline has cancelled the stragglers;
	// that is the graceful-exit contract, not a failure.
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	drainCtx, drainCancel := context.WithTimeout(context.Background(), jobDrain)
	defer drainCancel()
	if err := srv.Close(drainCtx); err != nil {
		fmt.Fprintf(stdout, "job drain cut short after %s: %v\n", jobDrain, err)
	}
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "bye")
	return nil
}
