package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/server"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 120, D: 4, NumOutliers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := dataio.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func setupServerFromArgs(t *testing.T, args ...string) *server.Server {
	t.Helper()
	var errBuf bytes.Buffer
	cc, err := parseFlags(args, &errBuf)
	if err != nil {
		t.Fatalf("parseFlags: %v (%s)", err, errBuf.String())
	}
	srv, _, _, err := setup(cc, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return srv
}

func setupFromArgs(t *testing.T, args ...string) http.Handler {
	t.Helper()
	return setupServerFromArgs(t, args...).Handler()
}

func TestSetupFromCSV(t *testing.T) {
	h := setupFromArgs(t, "-data", writeFixture(t), "-k", "4", "-tq", "0.95")
	req := httptest.NewRequest("POST", "/query", strings.NewReader(`{"index": 0}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if _, ok := resp["minimal"]; !ok {
		t.Fatalf("response missing minimal: %s", rec.Body.String())
	}
}

func TestSetupFromGenerators(t *testing.T) {
	for _, gen := range []string{"synthetic", "uniform", "athlete", "medical", "nba"} {
		h := setupFromArgs(t, "-gen", gen, "-n", "150", "-d", "4", "-k", "4", "-tq", "0.95")
		req := httptest.NewRequest("GET", "/healthz", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: healthz status %d", gen, rec.Code)
		}
	}
}

func TestSetupSharded(t *testing.T) {
	h := setupFromArgs(t, "-gen", "synthetic", "-n", "200", "-d", "4", "-k", "4",
		"-tq", "0.95", "-shards", "4", "-partitioner", "hash")
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Shards != 4 {
		t.Fatalf("healthz shards = %d, want 4", health.Shards)
	}
}

func TestSetupStateRoundTrip(t *testing.T) {
	path := writeFixture(t)
	state := filepath.Join(t.TempDir(), "state.json")
	var errBuf bytes.Buffer
	cc, err := parseFlags([]string{"-data", path, "-k", "4", "-tq", "0.95"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	_, _, m, err := setup(cc, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveStateFile(state); err != nil {
		t.Fatal(err)
	}
	// A second server imports the state instead of re-learning; no -t
	// or -tq needed.
	h := setupFromArgs(t, "-data", path, "-k", "4", "-load-state", state)
	req := httptest.NewRequest("GET", "/state", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("state after import: status %d", rec.Code)
	}
	if m2Threshold := rec.Body.String(); !strings.Contains(m2Threshold, "threshold") {
		t.Fatalf("state body: %s", m2Threshold)
	}
}

func TestNormalizeRescalesAdHocPoints(t *testing.T) {
	path := writeFixture(t)
	h := setupFromArgs(t, "-data", path, "-k", "4", "-tq", "0.95", "-normalize")
	// A raw-unit copy of a non-planted dataset row: with the transform
	// in place it lands exactly on that row (distance 0 to its nearest
	// neighbour), so it must NOT be an outlier in every subspace. The
	// planted outliers occupy the low indexes; row 50 is an inlier.
	ds, err := dataio.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(map[string]any{"point": ds.Point(50), "include_all": true})
	req := httptest.NewRequest("POST", "/query", bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		IsOutlier     bool `json:"is_outlier"`
		OutlyingCount int  `json:"outlying_count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// Without rescaling, a raw point against [0,1]-scaled data is an
	// outlier in all 2^d−1 subspaces.
	if resp.OutlyingCount == 15 {
		t.Fatal("raw-unit point evaluated unscaled against normalized data")
	}
}

func TestLoadStateRejectsConflictingFlags(t *testing.T) {
	path := writeFixture(t)
	state := filepath.Join(t.TempDir(), "state.json")
	var errBuf bytes.Buffer
	cc, err := parseFlags([]string{"-data", path, "-k", "4", "-tq", "0.95"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	_, _, m, err := setup(cc, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveStateFile(state); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{
		{"-tq", "0.99"},
		{"-t", "3"},
		{"-samples", "10"},
	} {
		args := append([]string{"-data", path, "-k", "4", "-load-state", state}, extra...)
		cc, err := parseFlags(args, &errBuf)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := setup(cc, &errBuf); err == nil || !strings.Contains(err.Error(), "conflicts") {
			t.Errorf("args %v: want conflict error, got %v", extra, err)
		}
	}
}

func TestSetupErrors(t *testing.T) {
	fixture := writeFixture(t)
	cases := [][]string{
		{},                                      // no dataset source
		{"-data", "missing.csv"},                // unreadable file
		{"-gen", "nope"},                        // unknown generator
		{"-data", fixture, "-gen", "synthetic"}, // both sources
		{"-data", fixture},                      // no threshold
		{"-data", fixture, "-k", "0", "-tq", "0.9"}, // invalid K
	}
	for _, args := range cases {
		var errBuf bytes.Buffer
		cc, err := parseFlags(args, &errBuf)
		if err != nil {
			continue // flag-level rejection is fine too
		}
		if _, _, _, err := setup(cc, &errBuf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestParseFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-backend", "nope"},
		{"-policy", "nope"},
		{"-partitioner", "nope"},
		{"-bogus"},
	} {
		var errBuf bytes.Buffer
		if _, err := parseFlags(args, &errBuf); err == nil {
			t.Errorf("args %v: expected flag error", args)
		}
	}
}

func TestHelpMentionsService(t *testing.T) {
	var errBuf bytes.Buffer
	_, _ = parseFlags([]string{"-h"}, &errBuf)
	for _, want := range []string{"-addr", "-cache", "-query-timeout", "-job-queue", "-job-workers", "/jobs/scan"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Fatalf("usage missing %q:\n%s", want, errBuf.String())
		}
	}
}

// TestAsyncScanJobRoundTrip wires the -job-* flags through to the
// server and drives one async scan to completion over the handler.
func TestAsyncScanJobRoundTrip(t *testing.T) {
	h := setupFromArgs(t, "-gen", "synthetic", "-n", "150", "-d", "4", "-k", "4", "-tq", "0.95",
		"-job-queue", "2", "-job-workers", "1", "-job-ttl", "1m", "-job-timeout", "5m")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs/scan", strings.NewReader(`{"max_results": 5}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d (body %s)", rec.Code, rec.Body.String())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+sub.ID, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("poll: status %d", rec.Code)
		}
		var poll struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &poll); err != nil {
			t.Fatal(err)
		}
		if poll.State == "done" {
			if len(poll.Result) == 0 {
				t.Fatal("done job has no result")
			}
			return
		}
		if poll.State == "failed" || poll.State == "cancelled" {
			t.Fatalf("job %s: %s", poll.State, poll.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
}

// lockedBuffer makes the serve goroutine's progress output safe to
// poll from the test goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeGracefulShutdown boots the real listener on an ephemeral
// port, makes one request, then cancels the context and expects a
// clean drain.
func TestServeGracefulShutdown(t *testing.T) {
	srv := setupServerFromArgs(t, "-gen", "synthetic", "-n", "150", "-d", "4", "-k", "4", "-tq", "0.95")
	ctx, cancel := context.WithCancel(context.Background())
	var out lockedBuffer
	done := make(chan error, 1)
	go func() { done <- serve(ctx, "127.0.0.1:0", srv, 30*time.Second, &out) }()

	// Wait for the listener line to learn the port.
	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "serving on ") {
			line := s[strings.Index(s, "serving on ")+len("serving on "):]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never reported its address: %q", out.String())
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if !strings.Contains(out.String(), "bye") {
		t.Fatalf("missing shutdown message: %q", out.String())
	}
}
