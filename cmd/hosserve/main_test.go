package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/server"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 120, D: 4, NumOutliers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := dataio.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func setupServerFromArgs(t *testing.T, args ...string) *server.Server {
	t.Helper()
	var errBuf bytes.Buffer
	cc, err := parseFlags(args, &errBuf)
	if err != nil {
		t.Fatalf("parseFlags: %v (%s)", err, errBuf.String())
	}
	srv, _, _, err := setup(cc, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return srv
}

func setupFromArgs(t *testing.T, args ...string) http.Handler {
	t.Helper()
	return setupServerFromArgs(t, args...).Handler()
}

func TestSetupFromCSV(t *testing.T) {
	h := setupFromArgs(t, "-data", writeFixture(t), "-k", "4", "-tq", "0.95")
	req := httptest.NewRequest("POST", "/query", strings.NewReader(`{"index": 0}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if _, ok := resp["minimal"]; !ok {
		t.Fatalf("response missing minimal: %s", rec.Body.String())
	}
}

func TestSetupFromGenerators(t *testing.T) {
	for _, gen := range []string{"synthetic", "uniform", "athlete", "medical", "nba"} {
		h := setupFromArgs(t, "-gen", gen, "-n", "150", "-d", "4", "-k", "4", "-tq", "0.95")
		req := httptest.NewRequest("GET", "/healthz", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: healthz status %d", gen, rec.Code)
		}
	}
}

func TestSetupSharded(t *testing.T) {
	h := setupFromArgs(t, "-gen", "synthetic", "-n", "200", "-d", "4", "-k", "4",
		"-tq", "0.95", "-shards", "4", "-partitioner", "hash")
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Shards != 4 {
		t.Fatalf("healthz shards = %d, want 4", health.Shards)
	}
}

func TestSetupStateRoundTrip(t *testing.T) {
	path := writeFixture(t)
	state := filepath.Join(t.TempDir(), "state.json")
	var errBuf bytes.Buffer
	cc, err := parseFlags([]string{"-data", path, "-k", "4", "-tq", "0.95"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	_, _, m, err := setup(cc, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveStateFile(state); err != nil {
		t.Fatal(err)
	}
	// A second server imports the state instead of re-learning; no -t
	// or -tq needed.
	h := setupFromArgs(t, "-data", path, "-k", "4", "-load-state", state)
	req := httptest.NewRequest("GET", "/state", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("state after import: status %d", rec.Code)
	}
	if m2Threshold := rec.Body.String(); !strings.Contains(m2Threshold, "threshold") {
		t.Fatalf("state body: %s", m2Threshold)
	}
}

func TestNormalizeRescalesAdHocPoints(t *testing.T) {
	path := writeFixture(t)
	h := setupFromArgs(t, "-data", path, "-k", "4", "-tq", "0.95", "-normalize")
	// A raw-unit copy of a non-planted dataset row: with the transform
	// in place it lands exactly on that row (distance 0 to its nearest
	// neighbour), so it must NOT be an outlier in every subspace. The
	// planted outliers occupy the low indexes; row 50 is an inlier.
	ds, err := dataio.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(map[string]any{"point": ds.Point(50), "include_all": true})
	req := httptest.NewRequest("POST", "/query", bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		IsOutlier     bool `json:"is_outlier"`
		OutlyingCount int  `json:"outlying_count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// Without rescaling, a raw point against [0,1]-scaled data is an
	// outlier in all 2^d−1 subspaces.
	if resp.OutlyingCount == 15 {
		t.Fatal("raw-unit point evaluated unscaled against normalized data")
	}
}

func TestLoadStateRejectsConflictingFlags(t *testing.T) {
	path := writeFixture(t)
	state := filepath.Join(t.TempDir(), "state.json")
	var errBuf bytes.Buffer
	cc, err := parseFlags([]string{"-data", path, "-k", "4", "-tq", "0.95"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	_, _, m, err := setup(cc, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveStateFile(state); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{
		{"-tq", "0.99"},
		{"-t", "3"},
		{"-samples", "10"},
	} {
		args := append([]string{"-data", path, "-k", "4", "-load-state", state}, extra...)
		cc, err := parseFlags(args, &errBuf)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := setup(cc, &errBuf); err == nil || !strings.Contains(err.Error(), "conflicts") {
			t.Errorf("args %v: want conflict error, got %v", extra, err)
		}
	}
}

func TestSetupErrors(t *testing.T) {
	fixture := writeFixture(t)
	cases := [][]string{
		{},                                      // no dataset source
		{"-data", "missing.csv"},                // unreadable file
		{"-gen", "nope"},                        // unknown generator
		{"-data", fixture, "-gen", "synthetic"}, // both sources
		{"-data", fixture},                      // no threshold
		{"-data", fixture, "-k", "0", "-tq", "0.9"}, // invalid K
	}
	for _, args := range cases {
		var errBuf bytes.Buffer
		cc, err := parseFlags(args, &errBuf)
		if err != nil {
			continue // flag-level rejection is fine too
		}
		if _, _, _, err := setup(cc, &errBuf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestParseFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-backend", "nope"},
		{"-policy", "nope"},
		{"-partitioner", "nope"},
		{"-bogus"},
	} {
		var errBuf bytes.Buffer
		if _, err := parseFlags(args, &errBuf); err == nil {
			t.Errorf("args %v: expected flag error", args)
		}
	}
}

func TestHelpMentionsService(t *testing.T) {
	var errBuf bytes.Buffer
	_, _ = parseFlags([]string{"-h"}, &errBuf)
	for _, want := range []string{"-addr", "-cache", "-query-timeout", "-job-queue", "-job-workers", "/jobs/scan"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Fatalf("usage missing %q:\n%s", want, errBuf.String())
		}
	}
}

// TestAsyncScanJobRoundTrip wires the -job-* flags through to the
// server and drives one async scan to completion over the handler.
func TestAsyncScanJobRoundTrip(t *testing.T) {
	h := setupFromArgs(t, "-gen", "synthetic", "-n", "150", "-d", "4", "-k", "4", "-tq", "0.95",
		"-job-queue", "2", "-job-workers", "1", "-job-ttl", "1m", "-job-timeout", "5m")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs/scan", strings.NewReader(`{"max_results": 5}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d (body %s)", rec.Code, rec.Body.String())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+sub.ID, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("poll: status %d", rec.Code)
		}
		var poll struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &poll); err != nil {
			t.Fatal(err)
		}
		if poll.State == "done" {
			if len(poll.Result) == 0 {
				t.Fatal("done job has no result")
			}
			return
		}
		if poll.State == "failed" || poll.State == "cancelled" {
			t.Fatalf("job %s: %s", poll.State, poll.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
}

// lockedBuffer makes the serve goroutine's progress output safe to
// poll from the test goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeGracefulShutdown boots the real listener on an ephemeral
// port, makes one request, then cancels the context and expects a
// clean drain.
func TestServeGracefulShutdown(t *testing.T) {
	srv := setupServerFromArgs(t, "-gen", "synthetic", "-n", "150", "-d", "4", "-k", "4", "-tq", "0.95")
	ctx, cancel := context.WithCancel(context.Background())
	var out lockedBuffer
	done := make(chan error, 1)
	go func() { done <- serve(ctx, "127.0.0.1:0", srv, 30*time.Second, &out) }()

	// Wait for the listener line to learn the port.
	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "serving on ") {
			line := s[strings.Index(s, "serving on ")+len("serving on "):]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never reported its address: %q", out.String())
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if !strings.Contains(out.String(), "bye") {
		t.Fatalf("missing shutdown message: %q", out.String())
	}
}

// TestDataDirRestartServesSavedDatasets is the acceptance criterion
// for warm-start serving: save the default and a loaded dataset into
// -data-dir, "restart" (a second process over the same directory, no
// -gen/-data), and the saved datasets answer without regeneration —
// the default synchronously from default.snap, the named one via a
// background warm-start job.
func TestDataDirRestartServesSavedDatasets(t *testing.T) {
	dir := t.TempDir()
	h1 := setupFromArgs(t, "-gen", "synthetic", "-n", "130", "-d", "4",
		"-k", "4", "-tq", "0.9", "-seed", "13", "-data-dir", dir)

	// Load a second dataset at runtime, then persist both.
	load := `{"name":"extra","gen":"synthetic","n":90,"d":3,"planted":2,"seed":5,"k":3,"tq":0.9}`
	if rec := doReq(t, h1, "POST", "/datasets/load", load); rec.Code != http.StatusCreated {
		t.Fatalf("load: %d (%s)", rec.Code, rec.Body.String())
	}
	for _, name := range []string{"default", "extra"} {
		if rec := doReq(t, h1, "POST", "/datasets/"+name+"/save", ""); rec.Code != http.StatusOK {
			t.Fatalf("save %s: %d (%s)", name, rec.Code, rec.Body.String())
		}
	}
	wantDefault := doReq(t, h1, "POST", "/query", `{"index":7}`).Body.String()
	wantExtra := doReq(t, h1, "POST", "/query", `{"dataset":"extra","index":3}`).Body.String()

	// Restart: only -data-dir. No generator, no CSV, no thresholds.
	h2 := setupFromArgs(t, "-data-dir", dir)
	gotDefault := doReq(t, h2, "POST", "/query", `{"index":7}`).Body.String()
	if zeroElapsed(gotDefault) != zeroElapsed(wantDefault) {
		t.Fatalf("restored default answers differently:\n before: %s\n after:  %s", wantDefault, gotDefault)
	}
	// The extra dataset arrives via a warm-start job; poll for it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := doReq(t, h2, "POST", "/query", `{"dataset":"extra","index":3}`)
		if rec.Code == http.StatusOK {
			if zeroElapsed(rec.Body.String()) != zeroElapsed(wantExtra) {
				t.Fatalf("warm-started extra answers differently:\n before: %s\n after:  %s", wantExtra, rec.Body.String())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("extra dataset never warm-started: %d (%s)", rec.Code, rec.Body.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Conflicting flags with a default.snap present fail loudly.
	var errBuf bytes.Buffer
	cc, err := parseFlags([]string{"-data-dir", dir, "-tq", "0.9"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := setup(cc, &errBuf); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflicting -tq with default.snap: err = %v", err)
	}
}

// doReq is do() without the JSON decode, for raw-body comparisons.
func doReq(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// zeroElapsed blanks elapsed_ms timings for byte comparison.
var elapsedMsRe = regexp.MustCompile(`"elapsed_ms":[0-9.eE+-]+`)

func zeroElapsed(s string) string {
	return elapsedMsRe.ReplaceAllString(s, `"elapsed_ms":0`)
}

// TestNormalizedSnapshotKeepsPointTransform is the regression test
// for losing the ad-hoc-point rescaling across a snapshot restart: a
// -normalize server saves raw column ranges into default.snap, and
// the restored server must rescale raw-unit client vectors exactly as
// the original did (without stats a raw point would look maximally
// distant from the [0,1]-scaled data and answer differently).
func TestNormalizedSnapshotKeepsPointTransform(t *testing.T) {
	dir := t.TempDir()
	csvPath := writeFixture(t)
	h1 := setupFromArgs(t, "-data", csvPath, "-normalize", "-k", "4", "-tq", "0.9", "-data-dir", dir)
	if rec := doReq(t, h1, "POST", "/datasets/default/save", ""); rec.Code != http.StatusOK {
		t.Fatalf("save: %d (%s)", rec.Code, rec.Body.String())
	}
	// A raw-unit point (the fixture is N(≈cluster centers, σ) data far
	// outside [0,1]); the transform decides its entire answer.
	probe := `{"point": [40, -3, 17, 8]}`
	want := doReq(t, h1, "POST", "/query", probe).Body.String()

	h2 := setupFromArgs(t, "-data-dir", dir)
	got := doReq(t, h2, "POST", "/query", probe).Body.String()
	if zeroElapsed(got) != zeroElapsed(want) {
		t.Fatalf("restored server answers the raw point differently (transform lost):\n before: %s\n after:  %s", want, got)
	}
}

// TestSnapshotRestoreRejectsSupersededFlags: every flag the snapshot
// supplies is a hard conflict when set explicitly — including the
// ones whose values coincide with flag defaults.
func TestSnapshotRestoreRejectsSupersededFlags(t *testing.T) {
	dir := t.TempDir()
	h1 := setupFromArgs(t, "-gen", "synthetic", "-n", "80", "-d", "3", "-k", "3", "-tq", "0.9", "-data-dir", dir)
	if rec := doReq(t, h1, "POST", "/datasets/default/save", ""); rec.Code != http.StatusOK {
		t.Fatalf("save: %d", rec.Code)
	}
	for _, extra := range [][]string{
		{"-k", "5"}, {"-shards", "4"}, {"-backend", "auto"}, {"-policy", "tsf"},
		{"-seed", "1"}, {"-normalize"}, {"-tq", "0.9"},
	} {
		var errBuf bytes.Buffer
		cc, err := parseFlags(append([]string{"-data-dir", dir}, extra...), &errBuf)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := setup(cc, &errBuf); err == nil || !strings.Contains(err.Error(), "conflicts") {
			t.Fatalf("flags %v silently accepted on snapshot restore: err = %v", extra, err)
		}
	}
}

// TestWarmStartRegistersUnderFileStem: a renamed snapshot file serves
// under its stem, not its stored internal name — skip-check and
// registration share one key, so renames cannot cause permanently
// failing jobs on every boot.
func TestWarmStartRegistersUnderFileStem(t *testing.T) {
	dir := t.TempDir()
	h1 := setupFromArgs(t, "-gen", "synthetic", "-n", "80", "-d", "3", "-k", "3", "-tq", "0.9", "-data-dir", dir)
	load := `{"name":"orig","gen":"synthetic","n":70,"d":3,"planted":2,"seed":4,"k":3,"tq":0.9}`
	if rec := doReq(t, h1, "POST", "/datasets/load", load); rec.Code != http.StatusCreated {
		t.Fatalf("load: %d", rec.Code)
	}
	if rec := doReq(t, h1, "POST", "/datasets/orig/save", ""); rec.Code != http.StatusOK {
		t.Fatalf("save: %d", rec.Code)
	}
	// Rename the file; its internal Name stays "orig".
	if err := os.Rename(filepath.Join(dir, "orig.snap"), filepath.Join(dir, "renamed.snap")); err != nil {
		t.Fatal(err)
	}
	h2 := setupFromArgs(t, "-gen", "synthetic", "-n", "80", "-d", "3", "-k", "3", "-tq", "0.9", "-data-dir", dir)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if rec := doReq(t, h2, "POST", "/query", `{"dataset":"renamed","index":1}`); rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("renamed snapshot never served under its stem")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And the stored name did NOT get registered.
	if rec := doReq(t, h2, "POST", "/query", `{"dataset":"orig","index":1}`); rec.Code != http.StatusNotFound {
		t.Fatalf("stored name registered despite rename: %d", rec.Code)
	}
}

// TestPprofEndpoint smoke-tests the -pprof-addr debug listener: it
// comes up on its own port, serves the pprof index and a profile, and
// the stop function tears it down.
func TestPprofEndpoint(t *testing.T) {
	var out lockedBuffer
	stop, err := startPprof("127.0.0.1:0", &out)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	m := regexp.MustCompile(`pprof on http://(\S+)/debug/pprof/`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("startPprof did not report its address: %q", out.String())
	}
	base := "http://" + m[1]

	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), "goroutine") {
		t.Fatalf("pprof index does not list profiles: %q", string(body[:n]))
	}

	resp, err = http.Get(base + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heap profile: %d", resp.StatusCode)
	}

	stop()
	if _, err := http.Get(base + "/debug/pprof/"); err == nil {
		t.Fatal("pprof listener still up after stop")
	}
}

// TestPprofFlagRejectsBadAddr: an unusable -pprof-addr is a startup
// error, not a silent no-profiling run.
func TestPprofFlagRejectsBadAddr(t *testing.T) {
	if _, err := startPprof("256.256.256.256:99999", new(lockedBuffer)); err == nil {
		t.Fatal("startPprof accepted an unusable address")
	}
}
