package hosminer_test

import (
	"math"
	"testing"

	hosminer "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// TestEndToEndAgainstNaiveOracle is the heaviest integration check:
// across datasets, dimensionalities, metrics and backends, the full
// Miner pipeline must produce exactly the same outlying set as the
// naive exhaustive oracle built from independent components.
func TestEndToEndAgainstNaiveOracle(t *testing.T) {
	type cfg struct {
		d       int
		metric  hosminer.Metric
		backend hosminer.Backend
	}
	for _, c := range []cfg{
		{4, hosminer.L2, hosminer.BackendLinear},
		{6, hosminer.L1, hosminer.BackendLinear},
		{5, hosminer.LInf, hosminer.BackendXTree},
		{7, hosminer.L2, hosminer.BackendXTree},
	} {
		ds, truth, err := hosminer.GenerateSynthetic(hosminer.SyntheticConfig{
			N: 150, D: c.d, NumOutliers: 2, Seed: int64(c.d) * 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := hosminer.New(ds, hosminer.Config{
			K: 4, TQuantile: 0.9, SampleSize: 5, Seed: 1,
			Metric: c.metric, Backend: c.backend,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Preprocess(); err != nil {
			t.Fatal(err)
		}
		// Independent oracle (always linear scan).
		ls, err := knn.NewLinear(ds, c.metric)
		if err != nil {
			t.Fatal(err)
		}
		eval, err := od.NewEvaluator(ds, ls, c.metric, 4, od.NormNone)
		if err != nil {
			t.Fatal(err)
		}
		queries := append(truth.Indices(), 50, 99)
		for _, idx := range queries {
			res, err := m.OutlyingSubspacesOfPoint(idx)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := baseline.NaiveSearch(eval, ds.Point(idx), idx, m.Threshold())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Outlying) != len(oracle.Outlying) {
				t.Fatalf("%+v idx=%d: miner %d outlying, oracle %d",
					c, idx, len(res.Outlying), len(oracle.Outlying))
			}
			for i := range res.Outlying {
				if res.Outlying[i] != oracle.Outlying[i] {
					t.Fatalf("%+v idx=%d: sets differ at %d", c, idx, i)
				}
			}
		}
	}
}

// TestSingleDimensionDataset: the degenerate d = 1 lattice (one
// subspace) must work end to end.
func TestSingleDimensionDataset(t *testing.T) {
	rows := make([][]float64, 60)
	for i := range rows {
		rows[i] = []float64{float64(i) * 0.1}
	}
	rows[59] = []float64{500}
	ds, err := hosminer.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := hosminer.New(ds, hosminer.Config{K: 3, TQuantile: 0.95, SampleSize: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.OutlyingSubspacesOfPoint(59)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsOutlierAnywhere || len(res.Minimal) != 1 || res.Minimal[0] != hosminer.NewSubspace(0) {
		t.Fatalf("d=1 outlier: %+v", res)
	}
	in, err := m.OutlyingSubspacesOfPoint(5)
	if err != nil {
		t.Fatal(err)
	}
	if in.IsOutlierAnywhere {
		t.Fatalf("d=1 inlier flagged: %v", in.Minimal)
	}
}

// TestDuplicateHeavyDataset: massive ties (categorical-like values)
// must not break any layer of the stack.
func TestDuplicateHeavyDataset(t *testing.T) {
	rows := make([][]float64, 120)
	for i := range rows {
		rows[i] = []float64{float64(i % 3), float64(i % 2), 1}
	}
	rows[0] = []float64{50, 0, 1} // single deviant in dim 0
	ds, err := hosminer.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []hosminer.Backend{hosminer.BackendLinear, hosminer.BackendXTree} {
		m, err := hosminer.New(ds, hosminer.Config{K: 4, T: 20, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.OutlyingSubspacesOfPoint(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Minimal) != 1 || !res.Minimal[0].Contains(0) {
			t.Fatalf("backend %v: minimal = %v", backend, res.Minimal)
		}
		// Constant dim 2 must never appear in a minimal subspace.
		for _, s := range res.Minimal {
			if s.Contains(2) && s.Card() == 1 {
				t.Fatalf("constant dim flagged: %v", s)
			}
		}
	}
}

// TestLearningOnDegenerateThreshold: TQuantile on a dataset whose ODs
// are all identical-ish must either resolve to a positive T or fail
// loudly, never divide by zero downstream.
func TestLearningOnDegenerateThreshold(t *testing.T) {
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{0, 0} // all identical → all ODs zero
	}
	ds, _ := hosminer.FromRows(rows)
	m, err := hosminer.New(ds, hosminer.Config{K: 3, TQuantile: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err == nil {
		t.Fatalf("degenerate dataset resolved T = %v; want error", m.Threshold())
	}
}

// TestNormDimEvaluatorIntegration: the optional dimensionality
// normalization is exposed for analysis; verify it interoperates with
// the full stack and flattens the OD growth of an average point.
func TestNormDimEvaluatorIntegration(t *testing.T) {
	ds, _, err := hosminer.GenerateSynthetic(hosminer.SyntheticConfig{
		N: 300, D: 8, NumOutliers: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := knn.NewLinear(ds, vector.L2)
	raw, err := od.NewEvaluator(ds, ls, vector.L2, 5, od.NormNone)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := od.NewEvaluator(ds, ls, vector.L2, 5, od.NormDim)
	if err != nil {
		t.Fatal(err)
	}
	idx := 150 // an inlier
	var rawRatio, normRatio float64
	low := subspace.New(0)
	high := subspace.Full(8)
	rawRatio = raw.ODOfPoint(idx, high) / math.Max(raw.ODOfPoint(idx, low), 1e-12)
	normRatio = norm.ODOfPoint(idx, high) / math.Max(norm.ODOfPoint(idx, low), 1e-12)
	if normRatio >= rawRatio {
		t.Fatalf("NormDim ratio %v should be below raw %v", normRatio, rawRatio)
	}
}

// TestQueryResultInternalConsistency: counters, sets and flags of a
// QueryResult must be mutually consistent.
func TestQueryResultInternalConsistency(t *testing.T) {
	ds, truth, _ := hosminer.GenerateSynthetic(hosminer.SyntheticConfig{
		N: 200, D: 6, NumOutliers: 2, Seed: 9,
	})
	m, _ := hosminer.New(ds, hosminer.Config{K: 4, TQuantile: 0.95, SampleSize: 8, Seed: 9})
	for _, idx := range []int{truth.Outliers[0].Index, 100} {
		res, err := m.OutlyingSubspacesOfPoint(idx)
		if err != nil {
			t.Fatal(err)
		}
		c := res.Counters
		if c.Unknown != 0 {
			t.Fatalf("search ended with %d unknown", c.Unknown)
		}
		if c.Evaluations+c.ImpliedUp+c.ImpliedDown != c.Total {
			t.Fatalf("counters inconsistent: %+v", c)
		}
		if int64(len(res.Outlying)) != c.Outliers {
			t.Fatalf("outlying len %d vs counter %d", len(res.Outlying), c.Outliers)
		}
		if res.IsOutlierAnywhere != (len(res.Outlying) > 0) {
			t.Fatal("IsOutlierAnywhere inconsistent")
		}
		if res.ODEvaluations > c.Evaluations {
			t.Fatalf("query reported %d OD evals, tracker %d", res.ODEvaluations, c.Evaluations)
		}
		expanded := core.ExpandMinimal(res.Minimal, ds.Dim())
		if len(expanded) != len(res.Outlying) {
			t.Fatal("minimal set does not generate the outlying set")
		}
	}
}
